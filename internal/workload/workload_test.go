package workload

import (
	"testing"

	"fssim/internal/core"
	"fssim/internal/machine"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("registry has %d benchmarks, want 10", len(names))
	}
	// The paper's presentation order: OS-intensive first; the unmodified-ab
	// baseline (ab-single) trails.
	want := []string{"ab-rand", "ab-seq", "du", "find-od", "iperf",
		"gzip", "vpr", "art", "swim", "ab-single"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("order[%d] = %s, want %s", i, names[i], n)
		}
	}
	for _, n := range OSIntensiveNames() {
		b, err := Lookup(n)
		if err != nil || !b.OSIntensive {
			t.Errorf("lookup(%s): %v, OSIntensive=%v", n, err, b.OSIntensive)
		}
	}
	if _, err := Lookup("nosuch"); err == nil {
		t.Error("lookup of unknown benchmark succeeded")
	}
}

// TestDeterminism: identical configuration and seed must reproduce identical
// cycle counts — the property that makes experiment comparisons meaningful.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"ab-rand", "du", "gzip"} {
		opts := DefaultOptions()
		opts.Scale = 0.25
		a, err := Run(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Insts != b.Stats.Insts {
			t.Errorf("%s not deterministic: %d/%d vs %d/%d cycles/insts",
				name, a.Stats.Cycles, a.Stats.Insts, b.Stats.Cycles, b.Stats.Insts)
		}
	}
}

// TestAblationInjection verifies both prediction side-effect models earn
// their keep on a CPU-bound OS-intensive workload (DESIGN.md §7): disabling
// either cache-pollution or bus-occupancy injection must not improve
// accuracy over having both enabled.
func TestAblationInjection(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 1.0 // full scale: effect sizes dominate sampling noise
	full, err := Run("ab-rand", opts)
	if err != nil {
		t.Fatal(err)
	}
	errFor := func(noPoll, noBus bool) float64 {
		o := DefaultOptions()
		o.Scale = 1.0
		o.Machine.Mode = machine.Accelerated
		o.Machine.NoPollution = noPoll
		o.Machine.NoBusInjection = noBus
		o.Sink = core.NewAccelerator(core.DefaultParams())
		res, err := Run("ab-rand", o)
		if err != nil {
			t.Fatal(err)
		}
		return relErr(float64(res.Stats.Cycles), float64(full.Stats.Cycles))
	}
	both := errFor(false, false)
	noBus := errFor(false, true)
	t.Logf("both-on %.1f%%, no-bus %.1f%%", 100*both, 100*noBus)
	if both > 0.06 {
		t.Errorf("error with both injections on = %.1f%%, want small", 100*both)
	}
	if noBus < both {
		t.Errorf("disabling bus injection improved accuracy (%.1f%% < %.1f%%)",
			100*noBus, 100*both)
	}
}

// TestStrategyCoverageOrdering checks the paper's Fig 11 monotonicity on the
// re-learning stress benchmark: Eager's coverage <= Statistical's <=
// Best-Match's.
func TestStrategyCoverageOrdering(t *testing.T) {
	cov := map[core.Strategy]float64{}
	for _, strat := range core.Strategies() {
		p := core.DefaultParams()
		p.Strategy = strat
		acc := core.NewAccelerator(p)
		opts := DefaultOptions()
		opts.Scale = 0.5
		opts.Machine.Mode = machine.Accelerated
		opts.Sink = acc
		if _, err := Run("ab-seq", opts); err != nil {
			t.Fatal(err)
		}
		cov[strat] = acc.Summary().Coverage()
		t.Logf("%-12s coverage %.1f%%", strat, 100*cov[strat])
	}
	if cov[core.Eager] > cov[core.BestMatch] {
		t.Errorf("Eager coverage (%.2f) above Best-Match (%.2f)",
			cov[core.Eager], cov[core.BestMatch])
	}
	if cov[core.Statistical] > cov[core.BestMatch] {
		t.Errorf("Statistical coverage (%.2f) above Best-Match (%.2f)",
			cov[core.Statistical], cov[core.BestMatch])
	}
}

// TestL2SizeChangesOutcome: the full-system simulation must be sensitive to
// L2 capacity on the cache-bound web workload (the Fig 2 result that
// motivates full-system simulation).
func TestL2SizeChangesOutcome(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.5
	small := opts
	small.Machine.Mem = small.Machine.Mem.WithL2Size(512 << 10)
	s, err := Run("ab-rand", small)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Run("ab-rand", opts) // 1MB default
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s.Stats.Cycles) / float64(l.Stats.Cycles)
	t.Logf("512KB/1MB cycle ratio %.2f", ratio)
	if ratio < 1.1 {
		t.Errorf("L2 halving changed cycles by only %.2fx", ratio)
	}
}

// TestWarmupArming checks that a deferring sink is armed at the workload's
// warm point and that measured stats exclude the warm-up.
func TestWarmupArming(t *testing.T) {
	acc := core.NewAccelerator(core.DefaultParams())
	opts := DefaultOptions()
	opts.Scale = 0.25
	opts.Machine.Mode = machine.Accelerated
	opts.Sink = acc
	res, err := Run("iperf", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Machine.Warmed() {
		t.Fatal("iperf never warmed")
	}
	if acc.Summary().Learned == 0 {
		t.Fatal("accelerator never armed after warm-up")
	}
	if res.Stats.Coverage() == 0 {
		t.Fatal("no coverage in the measured period")
	}
}
