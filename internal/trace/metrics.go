package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"fssim/internal/stats"
)

// Registry is a typed metrics registry: named counters, gauges, and
// histograms. Lookup is get-or-create and safe for concurrent use; the
// instruments themselves are atomic (counters, gauges) or single-writer
// (histograms, like the recorder that owns them). Every method is a no-op on
// a nil receiver, and the nil instruments it then returns are no-ops too, so
// `reg.Counter("x").Inc()` is safe — and nearly free — with tracing off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.counters[name]
	if c == nil {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.gauges[name]
	if v == nil {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it on first use.
func (g *Registry) Histogram(name string) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.hists[name]
	if h == nil {
		h = &Histogram{}
		g.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a log2-bucketed distribution (stats.LogHist) behind the
// registry's nil-safe surface. Unlike counters and gauges it is not atomic:
// observe only from the single simulation goroutine that owns the recorder.
type Histogram struct{ h stats.LogHist }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.h.Add(v)
}

// Hist exposes the underlying stats.LogHist (nil-safe: returns a zero-value
// histogram view for a nil receiver).
func (h *Histogram) Hist() stats.LogHist {
	if h == nil {
		return stats.LogHist{}
	}
	return h.h
}

// MetricKind tags a snapshot point.
type MetricKind string

const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// MetricPoint is one metric's snapshot. Counters and gauges carry Value;
// histograms carry Count/Mean/Min/Max plus the out-of-range and overflow
// bucket counts.
type MetricPoint struct {
	Name  string
	Kind  MetricKind
	Value int64

	Count      int64
	Mean       float64
	Min, Max   float64
	OutOfRange int64
	Overflow   int64
}

// Snapshot is an immutable, name-sorted view of a registry, attachable to a
// run result after the simulation completes.
type Snapshot []MetricPoint

// Snapshot captures every instrument, sorted by (name, kind) so the result —
// and everything rendered from it — is deterministic.
func (g *Registry) Snapshot() Snapshot {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(Snapshot, 0, len(g.counters)+len(g.gauges)+len(g.hists))
	for name, c := range g.counters {
		out = append(out, MetricPoint{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, v := range g.gauges {
		out = append(out, MetricPoint{Name: name, Kind: KindGauge, Value: v.Value()})
	}
	for name, h := range g.hists {
		lh := h.Hist()
		out = append(out, MetricPoint{
			Name: name, Kind: KindHistogram,
			Count: lh.N(), Mean: lh.Mean(), Min: lh.Min(), Max: lh.Max(),
			OutOfRange: lh.OutOfRange(), Overflow: lh.Overflow(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// WriteText renders the snapshot in a /metrics-style plaintext format: one
// `name value` line per counter/gauge, and `name_count`, `name_mean`,
// `name_min`, `name_max` (plus `name_oob`/`name_overflow` when non-zero)
// lines per histogram.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, p := range s {
		var err error
		switch p.Kind {
		case KindHistogram:
			_, err = fmt.Fprintf(w, "%s_count %d\n%s_mean %s\n%s_min %s\n%s_max %s\n",
				p.Name, p.Count,
				p.Name, ftoa(p.Mean), p.Name, ftoa(p.Min), p.Name, ftoa(p.Max))
			if err == nil && p.OutOfRange > 0 {
				_, err = fmt.Fprintf(w, "%s_oob %d\n", p.Name, p.OutOfRange)
			}
			if err == nil && p.Overflow > 0 {
				_, err = fmt.Fprintf(w, "%s_overflow %d\n", p.Name, p.Overflow)
			}
		default:
			_, err = fmt.Fprintf(w, "%s %d\n", p.Name, p.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteText snapshots the registry and renders it (see Snapshot.WriteText).
func (g *Registry) WriteText(w io.Writer) error { return g.Snapshot().WriteText(w) }

// ftoa formats a float compactly and deterministically.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
