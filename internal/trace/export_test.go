package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fssim/internal/isa"
)

func sampleRecorder() *Recorder {
	r := NewRecorder(Config{})
	r.Annotate(0, false)
	r.Interval(isa.Sys(isa.SysRead), CauseSyscall, 100, 50, 20, false)
	r.Annotate(1, true)
	r.Interval(isa.Sys(isa.SysRead), CauseSyscall, 400, 80, 30, true)
	r.Interval(isa.Irq(isa.IrqTimer), CauseIRQ, 600, 0, 0, false) // zero-length interval
	r.Instant("degrade sys_read", 700)
	return r
}

// TestChromeTraceFormat validates the exported Chrome trace-event JSON
// against the format's required fields — ph, ts, dur, pid/tid, name — so the
// file is guaranteed to load in Perfetto / chrome://tracing.
func TestChromeTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "ab-rand/App+OS", sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                       `json:"displayTimeUnit"`
		TraceEvents     []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	var complete, meta, instants int
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "name", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		var ph, name string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(ev["name"], &name); err != nil {
			t.Fatal(err)
		}
		switch ph {
		case "X":
			complete++
			for _, field := range []string{"ts", "dur", "args"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("complete event %q missing %q", name, field)
				}
			}
			var dur uint64
			if err := json.Unmarshal(ev["dur"], &dur); err != nil {
				t.Errorf("complete event %q dur not numeric: %v", name, err)
			}
		case "M":
			meta++
		case "i":
			instants++
			if _, ok := ev["ts"]; !ok {
				t.Errorf("instant %q missing ts", name)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3 (one per span, zero-dur included)", complete)
	}
	if instants != 1 {
		t.Errorf("instant events = %d, want 1", instants)
	}
	// process_name + two thread_name events.
	if meta != 3 {
		t.Errorf("metadata events = %d, want 3", meta)
	}
}

// TestChromeExportDeterminism: identical recorders must export identical
// bytes — the unit-level form of the harness's j1-vs-j8 guarantee.
func TestChromeExportDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChrome(&a, "run", sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, "run", sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recorders exported different bytes")
	}
}

func TestChromeExporterMultiProcessAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	x := NewChromeExporter(&buf)
	if err := x.AddProcess("one", sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := x.AddProcess("two", sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			PID int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if !pids[1] || !pids[2] {
		t.Errorf("expected pids 1 and 2, got %v", pids)
	}
	if err := x.AddProcess("late", sampleRecorder()); err == nil {
		t.Error("AddProcess after Close must fail")
	}

	// An empty document must still be valid JSON.
	var empty bytes.Buffer
	if err := NewChromeExporter(&empty).Close(); err != nil {
		t.Fatal(err)
	}
	var d2 map[string]any
	if err := json.Unmarshal(empty.Bytes(), &d2); err != nil {
		t.Fatalf("empty export invalid: %v\n%s", err, empty.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "ab-rand", sampleRecorder()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	var sawInstant bool
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d invalid JSON: %v", lines, err)
		}
		if obj["run"] != "ab-rand" {
			t.Errorf("line %d missing run label: %v", lines, obj)
		}
		if _, ok := obj["instant"]; ok {
			sawInstant = true
			continue
		}
		svc, _ := obj["service"].(string)
		if !strings.HasPrefix(svc, "sys_") && !strings.HasPrefix(svc, "Int_") {
			t.Errorf("line %d unexpected service %q", lines, svc)
		}
	}
	if lines != 4 || !sawInstant {
		t.Errorf("lines = %d (want 4), instant seen = %v", lines, sawInstant)
	}
}
