// Package trace is the simulator's observability layer: a per-machine,
// ring-buffered recorder of OS-service interval spans, a typed metrics
// registry, and exporters for Chrome trace-event JSON (loads in Perfetto), a
// plaintext /metrics-style dump, and a compact JSONL stream.
//
// Two properties shape every API in the package:
//
//   - Zero overhead when off. A nil *Recorder (and the nil *Registry,
//     *Counter, *Gauge, *Histogram it hands out) is a valid receiver whose
//     methods are guarded no-ops, so instrumentation sites compile down to a
//     nil check and the simulation's results are byte-identical with tracing
//     absent or disabled.
//
//   - Determinism. A recorder is written from exactly one machine's
//     simulation context (the kernel's thread-handoff protocol guarantees a
//     single driving goroutine), timestamps are simulated cycles, and every
//     exporter emits in a deterministically sorted order — so traces from
//     the experiment harness are byte-identical at any parallelism level,
//     consistent with the RunKey seed-derivation scheme.
package trace

import (
	"sort"

	"fssim/internal/isa"
)

// Cause classifies what opened an OS-service interval: a synchronous system
// call, an asynchronous interrupt, a fault, or the scheduler re-entering a
// kernel-blocked context from the idle loop (the paper's "extension of the
// initial OS service").
type Cause uint8

const (
	CauseSyscall Cause = iota
	CauseIRQ
	CauseException
	CauseResume
	// CauseApp marks sampled application-interval spans (user-mode stretches
	// between OS services, recorded when stratified sampling is active).
	CauseApp
)

var causeNames = [...]string{"syscall", "irq", "exception", "resume", "app"}

func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause(?)"
}

// CauseOf maps a service identifier's kind to its interval cause.
func CauseOf(svc isa.ServiceID) Cause {
	switch svc.Kind {
	case isa.KindInterrupt:
		return CauseIRQ
	case isa.KindException:
		return CauseException
	default:
		return CauseSyscall
	}
}

// Span is one completed OS-service interval. Nested services are already
// folded (the machine opens one interval per user→kernel transition and
// closes it at the matching return, per the paper's §3 interval rules), so
// spans on one machine never overlap. Cluster is the PLT cluster index the
// interval matched or was learned into (-1 when unknown, e.g. warm-up);
// Outlier marks predicted intervals whose signature matched no cluster.
type Span struct {
	Service   isa.ServiceID
	Cause     Cause
	Start     uint64 // simulated cycle the interval opened
	Cycles    uint64 // interval duration: measured, or predicted for emulated intervals
	Insts     uint64 // dynamic instructions attributed to the interval
	Predicted bool   // true when the interval was fast-forwarded
	Cluster   int32
	Outlier   bool
}

// Instant is a point event on the timeline (learner phase transitions,
// watchdog degrades, fault dispatches).
type Instant struct {
	Name string
	TS   uint64
}

// ServiceTotal aggregates all spans of one service, maintained as spans are
// recorded so totals survive ring eviction.
type ServiceTotal struct {
	Service   isa.ServiceID
	Spans     uint64
	Cycles    uint64
	Insts     uint64
	Predicted uint64 // spans that were fast-forwarded
	Outliers  uint64
}

// Config sizes a recorder.
type Config struct {
	// SpanCap bounds retained spans; older spans are evicted ring-style and
	// counted as dropped (service totals are unaffected). <= 0 = default.
	SpanCap int
	// InstantCap bounds retained instants the same way. <= 0 = default.
	InstantCap int
}

// DefaultConfig retains 64K spans and 4K instants (~4 MB per machine).
func DefaultConfig() Config { return Config{SpanCap: 1 << 16, InstantCap: 1 << 12} }

// Recorder collects one machine's spans, instants, and metrics. It is
// intentionally lock-free: the simulation's single-driver discipline means
// at most one goroutine records at a time (goroutine handoffs establish
// happens-before edges), and exporters run after the simulation completes.
// All methods are no-ops on a nil receiver.
type Recorder struct {
	cfg      Config
	spans    []Span // ring storage, capacity cfg.SpanCap
	nSpans   uint64 // total spans ever recorded
	instants []Instant
	nInst    uint64

	reg   *Registry
	clock func() uint64 // simulated-cycle source for InstantNow (set by the machine)

	// Pre-resolved per-interval histograms (avoid a registry lookup per span).
	hCycles *Histogram
	hInsts  *Histogram

	// Pending cluster annotation: set by the predictor/learner during the
	// interval-end callback, consumed by the next Interval call (same
	// goroutine, so ordering is structural, not timing-dependent).
	pendCluster int32
	pendOutlier bool
	pendSet     bool

	totals map[isa.ServiceID]*ServiceTotal
	order  []isa.ServiceID
}

// NewRecorder returns an enabled recorder.
func NewRecorder(cfg Config) *Recorder {
	def := DefaultConfig()
	if cfg.SpanCap <= 0 {
		cfg.SpanCap = def.SpanCap
	}
	if cfg.InstantCap <= 0 {
		cfg.InstantCap = def.InstantCap
	}
	r := &Recorder{
		cfg: cfg,
		reg: NewRegistry(),
		// Ring storage is reserved up front (the documented ~4 MB per
		// machine): recording a span or instant then never reallocates, so
		// an enabled recorder adds zero steady-state allocations to the
		// simulation hot loop — the same contract the nil recorder gives
		// the disabled path.
		spans:    make([]Span, 0, cfg.SpanCap),
		instants: make([]Instant, 0, cfg.InstantCap),
		totals:   make(map[isa.ServiceID]*ServiceTotal),
	}
	r.hCycles = r.reg.Histogram("interval.cycles")
	r.hInsts = r.reg.Histogram("interval.insts")
	return r
}

// Enabled reports whether the recorder is live (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Metrics returns the recorder's registry (nil for a nil recorder; the nil
// registry's methods are themselves no-ops).
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// SetClock installs the simulated-cycle source InstantNow stamps events with.
func (r *Recorder) SetClock(fn func() uint64) {
	if r == nil {
		return
	}
	r.clock = fn
}

// Now returns the current simulated cycle (0 without a clock).
func (r *Recorder) Now() uint64 {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// Annotate stages the PLT cluster outcome for the interval currently being
// closed; the next Interval call consumes it. Callers sit between the
// machine's interval-end callback and its span emission, so the annotation
// can never attach to the wrong span.
func (r *Recorder) Annotate(cluster int, outlier bool) {
	if r == nil {
		return
	}
	r.pendCluster = int32(cluster)
	r.pendOutlier = outlier
	r.pendSet = true
}

// Interval records one completed OS-service interval, consuming any staged
// annotation.
func (r *Recorder) Interval(svc isa.ServiceID, cause Cause, start, cycles, insts uint64, predicted bool) {
	if r == nil {
		return
	}
	sp := Span{
		Service: svc, Cause: cause,
		Start: start, Cycles: cycles, Insts: insts,
		Predicted: predicted, Cluster: -1,
	}
	if r.pendSet {
		sp.Cluster = r.pendCluster
		sp.Outlier = r.pendOutlier
		r.pendSet = false
	}
	if len(r.spans) < r.cfg.SpanCap {
		r.spans = append(r.spans, sp)
	} else {
		r.spans[r.nSpans%uint64(r.cfg.SpanCap)] = sp
	}
	r.nSpans++

	t := r.totals[svc]
	if t == nil {
		t = &ServiceTotal{Service: svc}
		r.totals[svc] = t
		r.order = append(r.order, svc)
	}
	t.Spans++
	t.Cycles += cycles
	t.Insts += insts
	r.hCycles.Observe(float64(cycles))
	r.hInsts.Observe(float64(insts))
	if predicted {
		t.Predicted++
	}
	if sp.Outlier {
		t.Outliers++
	}
}

// Instant records a point event at the given simulated cycle.
func (r *Recorder) Instant(name string, ts uint64) {
	if r == nil {
		return
	}
	in := Instant{Name: name, TS: ts}
	if len(r.instants) < r.cfg.InstantCap {
		r.instants = append(r.instants, in)
	} else {
		r.instants[r.nInst%uint64(r.cfg.InstantCap)] = in
	}
	r.nInst++
}

// InstantNow records a point event stamped with the machine clock.
func (r *Recorder) InstantNow(name string) {
	if r == nil {
		return
	}
	r.Instant(name, r.Now())
}

// Spans returns the retained spans oldest-first. The slice is a copy.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return ringSlice(r.spans, r.nSpans, r.cfg.SpanCap)
}

// Instants returns the retained instants oldest-first. The slice is a copy.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	return ringSlice(r.instants, r.nInst, r.cfg.InstantCap)
}

// ringSlice linearizes a ring buffer into a fresh oldest-first slice.
func ringSlice[T any](ring []T, n uint64, capacity int) []T {
	out := make([]T, 0, len(ring))
	if n <= uint64(len(ring)) {
		return append(out, ring...)
	}
	head := int(n % uint64(capacity))
	out = append(out, ring[head:]...)
	return append(out, ring[:head]...)
}

// Recorded returns the total number of spans ever recorded.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.nSpans
}

// Dropped returns how many spans were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if kept := uint64(len(r.spans)); r.nSpans > kept {
		return r.nSpans - kept
	}
	return 0
}

// Services returns every service ever recorded, in first-seen order (a
// deterministic consequence of the simulation's own event order).
func (r *Recorder) Services() []isa.ServiceID {
	if r == nil {
		return nil
	}
	out := make([]isa.ServiceID, len(r.order))
	copy(out, r.order)
	return out
}

// ServiceTotals returns per-service aggregates sorted by cycles descending
// (ties broken by service name, so the order is deterministic).
func (r *Recorder) ServiceTotals() []ServiceTotal {
	if r == nil {
		return nil
	}
	out := make([]ServiceTotal, 0, len(r.order))
	for _, svc := range r.order {
		out = append(out, *r.totals[svc])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Service.String() < out[j].Service.String()
	})
	return out
}
