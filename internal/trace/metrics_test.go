package trace

import (
	"strings"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plt.hits").Add(3)
	reg.Counter("plt.hits").Inc()
	if got := reg.Counter("plt.hits").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	reg.Gauge("runq").Set(7)
	reg.Gauge("runq").Add(-2)
	if got := reg.Gauge("runq").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	h := reg.Histogram("cycles")
	h.Observe(10)
	h.Observe(1000)
	if lh := h.Hist(); lh.N() != 2 || lh.Min() != 10 || lh.Max() != 1000 {
		t.Errorf("hist = N %d min %g max %g", lh.N(), lh.Min(), lh.Max())
	}
	// Get-or-create must return the same instrument.
	if reg.Counter("plt.hits") != reg.Counter("plt.hits") {
		t.Error("counter lookup not stable")
	}
}

// TestSnapshotDeterminism asserts snapshots sort by name and render the same
// bytes on repeated calls — the property the harness's metrics dump and the
// j1-vs-j8 comparison rely on.
func TestSnapshotDeterminism(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta").Add(1)
	reg.Gauge("alpha").Set(2)
	reg.Histogram("mid").Observe(4)
	reg.Histogram("mid").Observe(-1) // out-of-range bucket

	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[0].Name != "alpha" || snap[1].Name != "mid" || snap[2].Name != "zeta" {
		t.Errorf("snapshot not name-sorted: %v", snap)
	}
	var a, b strings.Builder
	if err := snap.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
	text := a.String()
	for _, want := range []string{"alpha 2\n", "zeta 1\n", "mid_count 1\n", "mid_mean 4\n", "mid_oob 1\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}
