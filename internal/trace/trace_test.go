package trace

import (
	"testing"

	"fssim/internal/isa"
)

// TestNilRecorderIsInert is the zero-overhead-when-off contract: every method
// of a nil recorder (and of the nil registry/instruments it hands out) must
// be a safe no-op, so instrumentation sites need no enablement branches.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetClock(func() uint64 { return 42 })
	r.Annotate(3, true)
	r.Interval(isa.Sys(isa.SysRead), CauseSyscall, 0, 10, 5, false)
	r.Instant("x", 1)
	r.InstantNow("y")
	if r.Now() != 0 || r.Recorded() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder returned non-zero state")
	}
	if r.Spans() != nil || r.Instants() != nil || r.Services() != nil || r.ServiceTotals() != nil {
		t.Error("nil recorder returned non-nil slices")
	}
	reg := r.Metrics()
	if reg != nil {
		t.Fatal("nil recorder returned non-nil registry")
	}
	reg.Counter("c").Inc()
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(7)
	reg.Gauge("g").Add(-2)
	reg.Histogram("h").Observe(3)
	if got := reg.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if snap := reg.Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v", snap)
	}
}

func TestIntervalRecordingAndTotals(t *testing.T) {
	r := NewRecorder(Config{})
	r.SetClock(func() uint64 { return 99 })
	read, timer := isa.Sys(isa.SysRead), isa.Irq(isa.IrqTimer)

	r.Annotate(2, false)
	r.Interval(read, CauseSyscall, 100, 50, 20, false)
	r.Interval(timer, CauseIRQ, 200, 30, 10, true) // no annotation staged
	r.Annotate(-1, true)
	r.Interval(read, CauseSyscall, 300, 60, 25, true)

	spans := r.Spans()
	if len(spans) != 3 || r.Recorded() != 3 {
		t.Fatalf("got %d spans, recorded %d", len(spans), r.Recorded())
	}
	if spans[0].Cluster != 2 || spans[0].Outlier {
		t.Errorf("span 0 annotation not consumed: %+v", spans[0])
	}
	if spans[1].Cluster != -1 || spans[1].Outlier {
		t.Errorf("span 1 should be unannotated: %+v", spans[1])
	}
	if spans[2].Cluster != -1 || !spans[2].Outlier {
		t.Errorf("span 2 annotation lost: %+v", spans[2])
	}
	if svcs := r.Services(); len(svcs) != 2 || svcs[0] != read || svcs[1] != timer {
		t.Errorf("services order = %v", svcs)
	}

	totals := r.ServiceTotals()
	if len(totals) != 2 {
		t.Fatalf("totals = %v", totals)
	}
	// sys_read: 50+60 = 110 cycles > timer's 30; sorted by cycles desc.
	if totals[0].Service != read || totals[0].Cycles != 110 || totals[0].Spans != 2 ||
		totals[0].Predicted != 1 || totals[0].Outliers != 1 {
		t.Errorf("read total = %+v", totals[0])
	}

	r.InstantNow("degrade sys_read")
	if ins := r.Instants(); len(ins) != 1 || ins[0].TS != 99 || ins[0].Name != "degrade sys_read" {
		t.Errorf("instants = %v", ins)
	}
}

// TestRingEviction verifies the ring keeps the newest SpanCap spans, counts
// drops, and leaves service totals complete.
func TestRingEviction(t *testing.T) {
	r := NewRecorder(Config{SpanCap: 4, InstantCap: 2})
	svc := isa.Sys(isa.SysWrite)
	for i := uint64(0); i < 10; i++ {
		r.Interval(svc, CauseSyscall, i*100, 10, 5, false)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(6+i) * 100; sp.Start != want {
			t.Errorf("span %d start = %d, want %d (oldest-first order)", i, sp.Start, want)
		}
	}
	if r.Recorded() != 10 || r.Dropped() != 6 {
		t.Errorf("recorded %d dropped %d, want 10/6", r.Recorded(), r.Dropped())
	}
	if tot := r.ServiceTotals(); tot[0].Spans != 10 || tot[0].Cycles != 100 {
		t.Errorf("totals must survive eviction: %+v", tot[0])
	}
	for i := uint64(0); i < 5; i++ {
		r.Instant("i", i)
	}
	if ins := r.Instants(); len(ins) != 2 || ins[0].TS != 3 || ins[1].TS != 4 {
		t.Errorf("instants after eviction = %v", ins)
	}
}

func TestCauseOf(t *testing.T) {
	cases := map[isa.ServiceID]Cause{
		isa.Sys(isa.SysRead):      CauseSyscall,
		isa.Irq(isa.IrqTimer):     CauseIRQ,
		isa.Exc(isa.ExcPageFault): CauseException,
	}
	for svc, want := range cases {
		if got := CauseOf(svc); got != want {
			t.Errorf("CauseOf(%v) = %v, want %v", svc, got, want)
		}
	}
	if CauseResume.String() != "resume" || CauseIRQ.String() != "irq" {
		t.Error("cause names wrong")
	}
}
