package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// chromeEvent is one Chrome trace-event object. Field order (and therefore
// byte-level output) is fixed by the struct; Dur is a pointer so duration
// appears on every complete ("X") event — zero included, the format requires
// it — but not on metadata or instant events.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeExporter streams recorders into one Chrome trace-event JSON document
// (the "JSON Object Format": {"traceEvents": [...]}), which Perfetto and
// chrome://tracing load directly. Each recorder becomes one process (pid) —
// the harness uses one per simulated machine — and each OS service within it
// one named thread (tid), so the UI shows one track per CPU/service.
// Timestamps are simulated cycles written as the format's microsecond field.
type ChromeExporter struct {
	w       io.Writer
	nextPID int
	started bool
	closed  bool
	err     error
}

// NewChromeExporter starts a document on w. Call AddProcess for each
// recorder, then Close to terminate the JSON.
func NewChromeExporter(w io.Writer) *ChromeExporter { return &ChromeExporter{w: w, nextPID: 1} }

func (x *ChromeExporter) emit(ev chromeEvent) {
	if x.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		x.err = err
		return
	}
	sep := ",\n  "
	if !x.started {
		sep = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n  "
		x.started = true
	}
	if _, err := io.WriteString(x.w, sep); err != nil {
		x.err = err
		return
	}
	_, x.err = x.w.Write(b)
}

// AddProcess exports one recorder under the given process label, assigning
// the next pid. Recorders must be quiescent (their run finished).
func (x *ChromeExporter) AddProcess(label string, r *Recorder) error {
	if x.closed {
		return errors.New("trace: AddProcess after Close")
	}
	pid := x.nextPID
	x.nextPID++
	x.emit(chromeEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": label}})
	if dropped := r.Dropped(); dropped > 0 {
		x.emit(chromeEvent{Name: "process_labels", Ph: "M", PID: pid,
			Args: map[string]any{"labels": fmt.Sprintf("%d spans dropped", dropped)}})
	}
	// One named track per OS service, tids in first-seen order.
	tids := make(map[string]int)
	for _, svc := range r.Services() {
		name := svc.String()
		tids[name] = len(tids) + 1
		x.emit(chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tids[name],
			Args: map[string]any{"name": name}})
	}
	for _, sp := range r.Spans() {
		dur := sp.Cycles
		x.emit(chromeEvent{
			Name: sp.Service.String(), Ph: "X", TS: sp.Start, Dur: &dur,
			PID: pid, TID: tids[sp.Service.String()], Cat: sp.Cause.String(),
			Args: map[string]any{
				"insts":     sp.Insts,
				"predicted": sp.Predicted,
				"cluster":   sp.Cluster,
				"outlier":   sp.Outlier,
			},
		})
	}
	for _, in := range r.Instants() {
		x.emit(chromeEvent{Name: in.Name, Ph: "i", TS: in.TS, PID: pid, S: "p"})
	}
	return x.err
}

// Close terminates the JSON document. The exporter cannot be reused.
func (x *ChromeExporter) Close() error {
	if x.closed {
		return x.err
	}
	x.closed = true
	if x.err != nil {
		return x.err
	}
	if !x.started {
		_, x.err = io.WriteString(x.w, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [")
	}
	if x.err == nil {
		_, x.err = io.WriteString(x.w, "\n]}\n")
	}
	return x.err
}

// WriteChrome is the one-recorder convenience wrapper around ChromeExporter.
func WriteChrome(w io.Writer, label string, r *Recorder) error {
	x := NewChromeExporter(w)
	if err := x.AddProcess(label, r); err != nil {
		return err
	}
	return x.Close()
}

// jsonlSpan is the JSONL stream's span line.
type jsonlSpan struct {
	Run       string `json:"run,omitempty"`
	Service   string `json:"service"`
	Cause     string `json:"cause"`
	Start     uint64 `json:"start"`
	Cycles    uint64 `json:"cycles"`
	Insts     uint64 `json:"insts"`
	Predicted bool   `json:"predicted"`
	Cluster   int32  `json:"cluster"`
	Outlier   bool   `json:"outlier"`
}

// jsonlInstant is the JSONL stream's point-event line.
type jsonlInstant struct {
	Run     string `json:"run,omitempty"`
	Instant string `json:"instant"`
	TS      uint64 `json:"ts"`
}

// WriteJSONL streams the recorder's spans (then instants) as one compact
// JSON object per line — the offline-analysis format. run labels every line
// so streams from many runs can be concatenated and still disentangled.
func WriteJSONL(w io.Writer, run string, r *Recorder) error {
	enc := json.NewEncoder(w)
	for _, sp := range r.Spans() {
		if err := enc.Encode(jsonlSpan{
			Run: run, Service: sp.Service.String(), Cause: sp.Cause.String(),
			Start: sp.Start, Cycles: sp.Cycles, Insts: sp.Insts,
			Predicted: sp.Predicted, Cluster: sp.Cluster, Outlier: sp.Outlier,
		}); err != nil {
			return err
		}
	}
	for _, in := range r.Instants() {
		if err := enc.Encode(jsonlInstant{Run: run, Instant: in.Name, TS: in.TS}); err != nil {
			return err
		}
	}
	return nil
}
