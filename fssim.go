// Package fssim is a full-system simulator with OS-service performance
// prediction, reproducing "Accelerating Full-System Simulation through
// Characterizing and Predicting Operating System Performance" (Kim, Liu,
// Solihin, Iyer, Zhao, Cohen — ISPASS 2007).
//
// The simulator models a Pentium-4-class machine (out-of-order core, L1I/L1D
// + unified L2, split-transaction bus) running a Linux-2.6-like kernel
// (VFS with dentry and page caches, block device, TCP-like sockets,
// preemptive scheduler, demand paging) under the paper's nine evaluation
// workloads. The acceleration scheme learns each OS service's performance
// behavior points into a Performance Lookup Table and then fast-forwards
// service invocations in emulation mode, predicting their cycles and cache
// effects from the instruction-count signature.
//
// # Running a benchmark
//
//	report, err := fssim.RunBenchmark("ab-rand", fssim.Options{})
//
// # Accelerating it
//
//	opts := fssim.Options{Mode: fssim.Accelerated}
//	report, err := fssim.RunBenchmark("ab-rand", opts)
//	fmt.Println(report.Coverage(), report.IPC())
//
// # Building a custom workload
//
//	sys := fssim.NewSystem(fssim.Options{})
//	sys.FS().MustCreate("/data/input", 1<<20)
//	sys.Spawn("myapp", func(p *fssim.Proc) {
//	    fd := p.Open("/data/input")
//	    for p.Read(fd, p.Scratch(), 64<<10) > 0 {
//	        p.U.Mix(5000) // process the chunk
//	    }
//	    p.Close(fd)
//	})
//	report := sys.Run()
//
// # Regenerating the paper's evaluation
//
//	go run ./cmd/fsbench            # every figure and table
//	go test -bench=. -benchmem      # one benchmark per artifact + ablations
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package fssim

import (
	"context"
	"io"

	"fssim/internal/core"
	"fssim/internal/experiments"
	"fssim/internal/isa"
	"fssim/internal/kernel"
	"fssim/internal/machine"
	"fssim/internal/pltstore"
	"fssim/internal/sample"
	"fssim/internal/server"
	"fssim/internal/trace"
	"fssim/internal/workload"
)

// Re-exported simulation modes (paper terminology).
const (
	// FullSystem simulates application and OS in full detail ("App+OS").
	FullSystem = machine.FullSystem
	// AppOnly simulates only the application; OS services are functionally
	// executed but cost nothing ("App Only").
	AppOnly = machine.AppOnly
	// Accelerated runs the paper's scheme ("App+OS Pred"): OS services are
	// learned, then fast-forwarded and predicted.
	Accelerated = machine.Accelerated
)

// Re-exported re-learning strategies (paper §4.4).
const (
	BestMatch   = core.BestMatch
	Eager       = core.Eager
	Delayed     = core.Delayed
	Statistical = core.Statistical
)

// Core simulated-system types, usable for building custom workloads.
type (
	// Machine is the simulated hardware: core, caches, bus, event queue.
	Machine = machine.Machine
	// Kernel is the simulated operating system.
	Kernel = kernel.Kernel
	// Proc is a guest thread's view of the OS: user-mode execution plus
	// system calls.
	Proc = kernel.Proc
	// Thread is a kernel-scheduled thread.
	Thread = kernel.Thread
	// Socket is a TCP-like socket endpoint.
	Socket = kernel.Socket
	// ServiceID names an OS service (sys_read, Int_239, ...).
	ServiceID = isa.ServiceID
	// Stats is the machine-level aggregate measurement.
	Stats = machine.Stats
	// IntervalRecord describes one completed OS service interval.
	IntervalRecord = machine.IntervalRecord

	// Accelerator is the paper's acceleration engine.
	Accelerator = core.Accelerator
	// Params are the scheme's tunables (p_min, DoC, cluster range, ...).
	Params = core.Params
	// Strategy selects the re-learning policy.
	Strategy = core.Strategy
	// Profiler performs the paper's §3 characterization of OS services.
	Profiler = core.Profiler

	// Sampler is the stratified application-interval sampler: it clusters
	// user-mode stretches between OS services, simulates a budgeted number of
	// representatives per stratum in detail, fast-forwards the rest, and
	// extrapolates with per-stratum confidence intervals.
	Sampler = sample.Sampler
	// SampleSpec configures a sampling policy (parse with ParseSampleSpec).
	SampleSpec = sample.Spec
	// SampleReport is a sampled run's estimator output: strata, the
	// detailed/extrapolated split, and the 95% CI on extrapolated cycles.
	SampleReport = sample.Report

	// Tracer is the observability recorder: per-interval spans, instants and
	// a typed metrics registry, exportable as Chrome trace-event JSON
	// (Perfetto), JSON lines, or a plaintext metrics dump. A nil *Tracer is
	// valid everywhere and records nothing.
	Tracer = trace.Recorder
	// ServiceTotal aggregates every recorded interval of one OS service.
	ServiceTotal = trace.ServiceTotal
)

// Options configures a simulation run.
type Options struct {
	// Mode selects full-system (default), application-only, or accelerated
	// simulation.
	Mode machine.SimMode
	// Strategy selects the re-learning policy for Accelerated mode
	// (default Statistical, the paper's choice).
	Strategy Strategy
	// Scale multiplies workload sizes (default 1.0).
	Scale float64
	// L2Size overrides the L2 capacity in bytes (default 1MB, paper §5.1).
	L2Size int
	// Seed fixes the simulation's randomness (default 1).
	Seed int64
	// InOrder selects the in-order core model instead of out-of-order.
	InOrder bool
	// NoCaches disables the cache models (ideal memory).
	NoCaches bool
	// TLB enables TLB modeling (64-entry I/D TLBs, page walks, flush on
	// address-space switch) — an extension beyond the paper's platform.
	TLB bool
	// Prefetch enables the L2 next-line prefetcher — likewise an extension.
	Prefetch bool
	// Sample attaches an application-interval stratified sampler: a preset
	// name ("default", "fast", "precise") or a key=value spec (see
	// sample.ParseSpec). Sampled runs simulate only budgeted representative
	// app intervals in detail, fast-forward the rest, and report extrapolated
	// figures with a 95% confidence interval (Report.Sample). Empty disables
	// sampling.
	Sample string
	// WarmDir roots a PLT snapshot store (a directory; created on first
	// save). Accelerated runs import a compatible persisted table before
	// simulating — a warm start that skips the learning phase wherever the
	// table already covers the service mix — and persist their learned table
	// after. Compatibility is hash-gated on (benchmark, machine config,
	// acceleration parameters, scale): a stale, mismatched or corrupt
	// snapshot is ignored and the run starts cold; it never produces a wrong
	// prediction. Empty disables persistence.
	WarmDir string
	// Observer, if set, receives every completed OS service interval.
	Observer func(IntervalRecord)
	// Trace, if set, records every OS service interval plus the kernel's and
	// accelerator's metrics into the given recorder. Tracing observes without
	// influencing: traced and untraced runs produce identical statistics.
	Trace *Tracer
}

func (o Options) toWorkload() (workload.Options, *core.Accelerator, *sample.Sampler, error) {
	opts := workload.DefaultOptions()
	if o.Scale > 0 {
		opts.Scale = o.Scale
	}
	opts.Machine.Mode = o.Mode
	if o.Seed != 0 {
		opts.Machine.Seed = o.Seed
	}
	if o.L2Size > 0 {
		opts.Machine.Mem = opts.Machine.Mem.WithL2Size(o.L2Size)
	}
	if o.InOrder {
		opts.Machine.Core = machine.CoreInOrder
	}
	if o.NoCaches {
		opts.Machine.WithCaches = false
	}
	if o.TLB {
		opts.Machine.Mem = opts.Machine.Mem.WithTLB()
	}
	if o.Prefetch {
		opts.Machine.Mem = opts.Machine.Mem.WithPrefetch()
	}
	opts.Observer = o.Observer
	opts.Trace = o.Trace
	var acc *core.Accelerator
	if o.Mode == machine.Accelerated {
		params := core.DefaultParams()
		params.Strategy = o.Strategy
		acc = core.NewAccelerator(params)
		opts.Sink = acc
	}
	var smp *sample.Sampler
	if o.Sample != "" {
		spec, err := sample.ParseSpec(o.Sample)
		if err != nil {
			return opts, acc, nil, err
		}
		smp = sample.New(spec, opts.Machine.Seed)
		opts.Sample = smp
	}
	return opts, acc, smp, nil
}

// Report is the outcome of a simulation run.
type Report struct {
	// Stats is the measured period's aggregate statistics.
	Stats Stats
	// Accel exposes the acceleration engine's state (nil unless the run was
	// Accelerated).
	Accel *Accelerator
	// Sample is the stratified-sampling estimator's report (nil unless
	// Options.Sample was set): strata, detailed/extrapolated split, and the
	// 95% confidence half-width on the extrapolated cycles.
	Sample *SampleReport
	// Machine and Kernel expose the finished simulation for inspection.
	Machine *Machine
	Kernel  *Kernel
	// WarmStarted reports that the run imported a persisted PLT from
	// Options.WarmDir before simulating (false for cold starts, including
	// every run whose snapshot was absent, stale or corrupt).
	WarmStarted bool
	// Err is non-nil when the run ended abnormally (a guest-thread panic
	// captured by the kernel scheduler, or a cancellation); Stats then cover
	// the simulated prefix.
	Err error
}

// IPC returns the run's overall instructions per cycle.
func (r *Report) IPC() float64 { return r.Stats.IPC() }

// Cycles returns the simulated execution time in cycles.
func (r *Report) Cycles() uint64 { return r.Stats.Cycles }

// Coverage returns the fraction of OS service invocations fast-forwarded
// (0 for non-accelerated runs).
func (r *Report) Coverage() float64 {
	if r.Accel == nil {
		return 0
	}
	return r.Accel.Summary().Coverage()
}

// Benchmarks returns the evaluation suite's workload names, OS-intensive
// first (ab-rand, ab-seq, du, find-od, iperf, gzip, vpr, art, swim).
func Benchmarks() []string { return workload.Names() }

// OSIntensiveBenchmarks returns the five OS-intensive workload names.
func OSIntensiveBenchmarks() []string { return workload.OSIntensiveNames() }

// RunBenchmark builds and runs one of the named evaluation workloads. With
// Options.WarmDir set, an Accelerated run warm-starts from (and persists to)
// the PLT snapshot store rooted there.
func RunBenchmark(name string, o Options) (*Report, error) {
	opts, acc, smp, err := o.toWorkload()
	if err != nil {
		return nil, err
	}
	var store *pltstore.Store
	var learn uint64
	warmed := false
	if acc != nil && o.WarmDir != "" {
		store = pltstore.Open(o.WarmDir)
		// Export on the fresh accelerator yields the exact Params it was
		// built with, so the hash gates on what this run would learn under.
		learn = pltstore.LearnHash(name, opts.Machine, acc.Export().Params, opts.Scale, "")
		if snap, err := store.Load(name, learn); err == nil {
			warmed = acc.Import(snap.State) == nil
		}
	}
	res, err := workload.Run(name, opts)
	if err != nil {
		return nil, err
	}
	if store != nil {
		snap := &pltstore.Snapshot{
			LearnHash:  learn,
			ReplayHash: pltstore.ReplayHash(learn, "fssim:"+name, opts.Machine.Seed),
			Benchmark:  name,
			Key:        "fssim:" + name,
			Stats:      res.Stats,
			State:      acc.Export(),
		}
		// Best effort: an unwritable warm dir degrades persistence, not the run.
		_ = store.Save(snap)
	}
	rep := &Report{Stats: res.Stats, Accel: acc, Machine: res.Machine, Kernel: res.Kernel, WarmStarted: warmed}
	if smp != nil {
		r := smp.Report()
		rep.Sample = &r
	}
	return rep, nil
}

// System is an assembled simulated machine + OS awaiting custom workloads.
type System struct {
	m    *Machine
	k    *Kernel
	acc  *Accelerator
	smp  *Sampler
	opts Options
}

// NewSystem builds a simulated system for custom guest programs. An invalid
// Options.Sample spec panics here (unlike RunBenchmark, there is no error
// return); validate specs with ParseSampleSpec first when they are
// user-supplied.
func NewSystem(o Options) *System {
	opts, acc, smp, err := o.toWorkload()
	if err != nil {
		panic("fssim: " + err.Error())
	}
	m := machine.New(opts.Machine)
	if opts.Trace != nil {
		m.SetTrace(opts.Trace)
	}
	if opts.Sink != nil {
		m.SetSink(opts.Sink)
		if acc != nil && opts.Trace != nil {
			acc.SetRecorder(opts.Trace)
		}
	}
	if opts.Sample != nil {
		m.SetAppSink(opts.Sample)
		if smp != nil && opts.Trace != nil {
			smp.SetRecorder(opts.Trace)
		}
	}
	if opts.Observer != nil {
		m.SetObserver(opts.Observer)
	}
	k := kernel.New(m, opts.Tunables)
	return &System{m: m, k: k, acc: acc, smp: smp, opts: o}
}

// Machine returns the simulated hardware.
func (s *System) Machine() *Machine { return s.m }

// Kernel returns the simulated OS.
func (s *System) Kernel() *Kernel { return s.k }

// FS returns the simulated filesystem for setup (MustCreate, MustMkdir, ...).
func (s *System) FS() *kernel.FS { return s.k.FS() }

// Net returns the simulated network stack for setup.
func (s *System) Net() *kernel.Net { return s.k.Net() }

// Spawn creates a guest thread running body when Run is called.
func (s *System) Spawn(name string, body func(*Proc)) *Thread {
	return s.k.Spawn(name, body)
}

// Run executes the system until every thread exits and returns the report.
// A guest-thread panic or a machine cancellation surfaces in Report.Err; the
// partially simulated statistics are still reported.
func (s *System) Run() *Report {
	err := s.k.Run()
	// Close the final user-mode stretch (no-op without a sampling sink).
	s.m.FinishApp()
	rep := &Report{Stats: s.m.Stats(), Accel: s.acc, Machine: s.m, Kernel: s.k, Err: err}
	if s.smp != nil {
		r := s.smp.Report()
		rep.Sample = &r
	}
	return rep
}

// DefaultParams returns the paper's acceleration parameters: Statistical
// strategy, p_min = 3%, 95% confidence (learning window ~100), ±5% scaled
// clusters, warm-up skip of 5.
func DefaultParams() Params { return core.DefaultParams() }

// NewAccelerator builds an acceleration engine with custom parameters; use
// it with workload.Options directly for non-default configurations.
func NewAccelerator(p Params) *Accelerator { return core.NewAccelerator(p) }

// NewProfiler returns a §3 characterization profiler; attach its Observer.
func NewProfiler() *Profiler { return core.NewProfiler() }

// ParseSampleSpec parses a sampling policy: a preset name ("default",
// "fast", "precise") or a comma-separated key=value list (budget, min,
// pilot, range, refresh, mix), e.g. "fast,budget=6".
func ParseSampleSpec(s string) (SampleSpec, error) { return sample.ParseSpec(s) }

// NewSampler builds an application-interval sampler for direct use with
// workload.Options.Sample; RunBenchmark and NewSystem build one automatically
// from Options.Sample.
func NewSampler(spec SampleSpec, seed int64) *Sampler { return sample.New(spec, seed) }

// NewTracer returns an observability recorder with default ring capacities,
// ready to pass as Options.Trace.
func NewTracer() *Tracer { return trace.NewRecorder(trace.DefaultConfig()) }

// WriteChromeTrace exports one recorder as a Chrome trace-event JSON document
// that loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: one thread lane per OS service, one slice per interval.
func WriteChromeTrace(w io.Writer, label string, t *Tracer) error {
	return trace.WriteChrome(w, label, t)
}

// Serving front-end types (see cmd/fssimd and internal/server).
type (
	// ServerConfig configures the resilient HTTP serving front-end: listen
	// address, admission-queue bound, worker-pool width, request deadline,
	// drain budget, circuit-breaker tuning, and drain-time artifacts.
	ServerConfig = server.Config
	// ServerClient talks to a running fssimd.
	ServerClient = server.Client
	// RunRequest is the JSON body of POST /v1/runs.
	RunRequest = server.RunRequest
	// RunResponse is the deterministic JSON body of a completed run.
	RunResponse = server.RunResponse
)

// Serve runs the serving front-end until ctx is canceled, then drains
// gracefully: admission stops, in-flight runs finish or are canceled within
// the drain budget, and trace/metrics artifacts are flushed. A nil error
// means a clean drain. See cmd/fssimd for the flag-driven daemon.
func Serve(ctx context.Context, cfg ServerConfig) error {
	return server.New(cfg).Serve(ctx)
}

// NewServerClient returns a client for the fssimd at base, e.g.
// "http://localhost:8080".
func NewServerClient(base string) *ServerClient { return server.NewClient(base) }

// Experiments lists the regenerable paper artifacts (fig1..fig12, tab1, tab2).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact and returns its rendered
// table.
func RunExperiment(id string, scale float64) (string, error) {
	out, err := RunExperiments(context.Background(), []string{id}, scale, 0)
	if err != nil {
		return "", err
	}
	return out[0], nil
}

// RunExperiments regenerates several paper artifacts over one shared
// experiment scheduler: each distinct simulation executes exactly once even
// when artifacts overlap (the App+OS baselines are shared by six of them),
// and up to parallelism simulations run concurrently (0 = GOMAXPROCS).
// Rendered tables come back in input order and are byte-identical at any
// parallelism level. An empty ids slice runs the full suite.
//
// Canceling ctx aborts in-flight simulations cooperatively (this is how
// fsbench turns Ctrl-C into a clean exit); experiments that completed before
// the cancellation are still rendered and returned alongside the error.
func RunExperiments(ctx context.Context, ids []string, scale float64, parallelism int) ([]string, error) {
	cfg := experiments.DefaultConfig().WithContext(ctx)
	if scale > 0 {
		cfg.Scale = scale
	}
	cfg.Parallelism = parallelism
	results, err := experiments.RunAll(ids, cfg)
	out := make([]string, 0, len(results))
	for _, res := range results {
		if res != nil {
			out = append(out, res.Render())
		}
	}
	if err != nil {
		return out, err
	}
	return out, nil
}
