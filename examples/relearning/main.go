// Relearning: the paper's Fig 11 study on the workload built to stress
// re-learning — ab-seq's request mix shifts to a new page size every few
// dozen requests, so behavior points that never occurred during initial
// learning keep appearing. Compare how the four strategies trade coverage
// against accuracy.
//
//	go run ./examples/relearning
package main

import (
	"fmt"
	"log"
	"math"

	"fssim"
)

func main() {
	const bench = "ab-seq"
	full, err := fssim.RunBenchmark(bench, fssim.Options{Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s ground truth: %d cycles\n\n", bench, full.Cycles())
	fmt.Printf("%-13s %9s %10s %9s %9s %9s\n",
		"strategy", "coverage", "abs error", "relearns", "outliers", "clusters")
	for _, strat := range []fssim.Strategy{
		fssim.BestMatch, fssim.Statistical, fssim.Delayed, fssim.Eager,
	} {
		rep, err := fssim.RunBenchmark(bench, fssim.Options{
			Mode: fssim.Accelerated, Strategy: strat, Scale: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := rep.Accel.Summary()
		e := math.Abs(float64(rep.Cycles())-float64(full.Cycles())) / float64(full.Cycles())
		fmt.Printf("%-13s %8.1f%% %9.1f%% %9d %9d %9d\n",
			strat, 100*rep.Coverage(), 100*e, sum.Relearns, sum.Outliers, sum.Clusters)
	}
	fmt.Println("\nBest-Match never re-learns (highest coverage, stalest table);")
	fmt.Println("Eager re-learns on every outlier (lowest coverage); Statistical")
	fmt.Println("re-learns only when a Student-t bound says an outlier cluster's")
	fmt.Println("probability of occurrence exceeds p_min = 3% (cf. paper §4.4).")
}
