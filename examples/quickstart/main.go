// Quickstart: run one OS-intensive benchmark three ways — full-system
// simulation, application-only simulation, and the paper's accelerated
// scheme — and compare what each reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fssim"
)

func main() {
	const bench = "ab-rand"
	fmt.Printf("benchmark: %s (Apache-like server, random page requests)\n\n", bench)

	// 1. Ground truth: detailed full-system simulation (application + OS).
	full, err := fssim.RunBenchmark(bench, fssim.Options{Mode: fssim.FullSystem})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The classic shortcut: application-only simulation (OS is free).
	app, err := fssim.RunBenchmark(bench, fssim.Options{Mode: fssim.AppOnly})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's scheme: learn each OS service's behavior points, then
	// fast-forward its invocations and predict their performance.
	pred, err := fssim.RunBenchmark(bench, fssim.Options{
		Mode: fssim.Accelerated, Strategy: fssim.Statistical,
	})
	if err != nil {
		log.Fatal(err)
	}

	fc := float64(full.Cycles())
	fmt.Printf("%-22s %14s %10s %8s\n", "mode", "cycles", "vs full", "IPC")
	row := func(name string, r *fssim.Report) {
		fmt.Printf("%-22s %14d %9.3fx %8.3f\n",
			name, r.Cycles(), float64(r.Cycles())/fc, r.IPC())
	}
	row("full-system", full)
	row("application-only", app)
	row("accelerated (paper)", pred)

	sum := pred.Accel.Summary()
	fmt.Printf("\naccelerated run: %.1f%% of %d OS-service invocations fast-forwarded\n",
		100*pred.Coverage(), sum.Learned+sum.Predicted)
	fmt.Printf("PLT state: %d clusters across %d services, %d re-learning periods\n",
		sum.Clusters, sum.Services, sum.Relearns)
	errPct := 100 * abs(float64(pred.Cycles())-fc) / fc
	fmt.Printf("execution-time prediction error: %.1f%% (paper reports 3.2%% average)\n", errPct)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
