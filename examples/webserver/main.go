// Webserver: the paper's §3 characterization study on the Apache-like
// workload — per-service behavior (Fig 3), sys_read's multiple behavior
// points (Figs 4-5), and the effect of scaled clustering on the coefficient
// of variation (Fig 6).
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"fssim"
	"fssim/internal/isa"
)

func main() {
	prof := fssim.NewProfiler()
	rep, err := fssim.RunBenchmark("ab-rand", fssim.Options{
		Scale:    0.5,
		Observer: prof.Observer(),
	})
	if err != nil {
		log.Fatal(err)
	}
	st := rep.Stats
	fmt.Printf("ab-rand full-system run: %d instructions (%.0f%% OS), %d cycles, IPC %.3f\n\n",
		st.Insts, 100*float64(st.OSInsts)/float64(st.Insts), st.Cycles, st.IPC())

	fmt.Println("per-service characterization (cf. paper Fig 3):")
	fmt.Printf("  %-18s %6s %12s %10s %8s %8s\n", "service", "n", "cycles avg", "±std", "IPC", "clusters")
	for _, sp := range prof.Services() {
		if sp.N < 2 {
			continue
		}
		fmt.Printf("  %-18s %6d %12.0f %10.0f %8.3f %8d\n",
			sp.Service, sp.N, sp.Cycles.Mean(), sp.Cycles.Std(),
			sp.IPC.Mean(), len(sp.Table.Clusters))
	}

	read := prof.Service(isa.Sys(isa.SysRead))
	if read != nil {
		h := read.Hist2D(1000, 4000)
		fmt.Printf("\nsys_read behavior points (cf. paper Fig 5): %d invocations fall\n", h.Total())
		fmt.Printf("into only %d occupied (1000-inst x 4000-cycle) bins — a small set\n", h.NonEmpty())
		fmt.Println("of recurring behavior points, identifiable by instruction count:")
		for i, c := range h.Cells() {
			if i == 10 {
				fmt.Printf("  ... (%d more bins)\n", h.NonEmpty()-10)
				break
			}
			fmt.Printf("  ~%5.0f insts, ~%6.0f cycles: %5d occurrences\n", c.X, c.Y, c.Count)
		}
	}

	cv := prof.CVs()
	fmt.Printf("\nscaled clustering (cf. paper Fig 6):\n")
	fmt.Printf("  execution-time CV: %.2f unclustered -> %.2f clustered (%.1fx reduction)\n",
		cv.NonClusteredTime, cv.ClusteredTime, cv.NonClusteredTime/cv.ClusteredTime)
	fmt.Printf("  IPC CV:            %.2f unclustered -> %.2f clustered\n",
		cv.NonClusteredIPC, cv.ClusteredIPC)
}
