// Customworkload: build a new guest program against the public API — a
// small log-processing pipeline (producer thread appends records to a log;
// consumer thread tails and aggregates them) — then measure how well the
// acceleration scheme handles a workload it was never tuned for.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"

	"math"

	"fssim"
)

// buildPipeline installs the custom workload on a fresh system.
func buildPipeline(sys *fssim.System) {
	fs := sys.FS()
	fs.MustCreate("/var/log/events.log", 0)
	fs.MustDevNull("/dev/null")
	// A pre-existing corpus the consumer joins against (cold on disk).
	fs.MustCreate("/data/corpus.bin", 512<<10)

	const (
		batches     = 150
		recordBytes = 2048
	)

	producer := func(p *fssim.Proc) {
		fd := p.Open("/var/log/events.log")
		for i := 0; i < batches; i++ {
			p.U.Mix(800) // format a batch of records
			p.Write(fd, p.Scratch(), recordBytes)
			p.Gettimeofday()
			if i%10 == 9 {
				p.SchedYield()
			}
		}
		p.Close(fd)
	}

	consumer := func(p *fssim.Proc) {
		logFd := p.Open("/var/log/events.log")
		corpus := p.Open("/data/corpus.bin")
		out := p.Open("/dev/null")
		total := 0
		for total < batches*recordBytes {
			n := p.Read(logFd, p.Scratch(), 8<<10)
			if n == 0 {
				p.Nanosleep(20_000) // tail -f style wait
				continue
			}
			total += n
			// Join each record batch against a corpus window.
			p.Lseek(corpus, int64(total)%(400<<10))
			p.Read(corpus, p.Scratch(), 16<<10)
			p.U.Mix(3000) // aggregate
			p.Write(out, p.Scratch(), 512)
		}
		p.Close(logFd)
		p.Close(corpus)
		p.Close(out)
	}

	sys.Spawn("producer", producer)
	sys.Spawn("consumer", consumer)
}

func run(mode fssim.Options) *fssim.Report {
	sys := fssim.NewSystem(mode)
	buildPipeline(sys)
	return sys.Run()
}

func main() {
	full := run(fssim.Options{Mode: fssim.FullSystem})
	st := full.Stats
	fmt.Printf("custom log pipeline, full-system: %d insts (%.0f%% OS), %d cycles, IPC %.3f\n",
		st.Insts, 100*float64(st.OSInsts)/float64(st.Insts), st.Cycles, st.IPC())

	pred := run(fssim.Options{Mode: fssim.Accelerated, Strategy: fssim.Statistical})
	e := math.Abs(float64(pred.Cycles())-float64(full.Cycles())) / float64(full.Cycles())
	fmt.Printf("accelerated:                      %d cycles (%.1f%% error, %.0f%% coverage)\n",
		pred.Cycles(), 100*e, 100*pred.Coverage())

	fmt.Println("\nper-service view of the accelerated run:")
	for _, row := range pred.Accel.Report() {
		if row.Seen < 2 {
			continue
		}
		fmt.Printf("  %-18s seen %-5d clusters %-3d predicted %-5d relearns %d\n",
			row.Service, row.Seen, row.Clusters, row.Predicted, row.Relearns)
	}
}
