// Cachestudy: the design-space question that motivates the paper (Figs 2 and
// 10) — does doubling the L2 from 512KB to 1MB help? Application-only
// simulation says no; full-system simulation says yes; the accelerated
// simulator reaches the full-system answer while fast-forwarding most OS
// work.
//
//	go run ./examples/cachestudy
package main

import (
	"fmt"
	"log"

	"fssim"
)

func run(bench string, mode fssim.Options, l2 int) *fssim.Report {
	mode.L2Size = l2
	mode.Scale = 0.5
	rep, err := fssim.RunBenchmark(bench, mode)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	const bench = "ab-rand"
	fmt.Printf("design question: is a 1MB L2 worth it over 512KB for %q?\n\n", bench)
	modes := []struct {
		name string
		opts fssim.Options
	}{
		{"application-only", fssim.Options{Mode: fssim.AppOnly}},
		{"full-system", fssim.Options{Mode: fssim.FullSystem}},
		{"accelerated", fssim.Options{Mode: fssim.Accelerated}},
	}
	fmt.Printf("%-18s %14s %14s %10s\n", "simulation", "512KB cycles", "1MB cycles", "speedup")
	for _, m := range modes {
		small := run(bench, m.opts, 512<<10)
		large := run(bench, m.opts, 1<<20)
		sp := float64(small.Cycles()) / float64(large.Cycles())
		fmt.Printf("%-18s %14d %14d %9.2fx", m.name, small.Cycles(), large.Cycles(), sp)
		if large.Accel != nil {
			fmt.Printf("  (%.0f%% of OS invocations fast-forwarded)", 100*large.Coverage())
		}
		fmt.Println()
	}
	fmt.Println("\napplication-only simulation reports no benefit because the OS work")
	fmt.Println("that actually exercises the L2 is never simulated; the accelerated")
	fmt.Println("simulator tracks the full-system conclusion (cf. paper Figs 2 & 10).")
}
