// Tracing: attach the observability recorder to an accelerated ab-rand run,
// export the interval trace as Chrome trace-event JSON (load trace.json at
// https://ui.perfetto.dev or chrome://tracing — one lane per OS service, one
// slice per interval, instants for re-learns and phase changes), and print
// the services that dominated simulated time.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"fssim"
)

func main() {
	const bench = "ab-rand"
	rec := fssim.NewTracer()
	rep, err := fssim.RunBenchmark(bench, fssim.Options{
		Mode: fssim.Accelerated, Scale: 0.5, Trace: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d cycles, IPC %.3f, coverage %.1f%%\n\n",
		bench, rep.Cycles(), rep.IPC(), 100*rep.Coverage())

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := fssim.WriteChromeTrace(f, bench, rec); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote trace.json (%d spans recorded, %d evicted from the ring)\n",
		rec.Recorded(), rec.Dropped())
	fmt.Println("open it at https://ui.perfetto.dev or chrome://tracing")

	// ServiceTotals survive ring eviction: they aggregate every interval the
	// run executed, sorted by cycles descending.
	fmt.Printf("\ntop services by simulated cycles:\n")
	fmt.Printf("%-14s %9s %12s %10s %10s\n", "service", "spans", "cycles", "predicted", "outliers")
	totals := rec.ServiceTotals()
	if len(totals) > 5 {
		totals = totals[:5]
	}
	for _, t := range totals {
		fmt.Printf("%-14s %9d %12d %10d %10d\n",
			t.Service, t.Spans, t.Cycles, t.Predicted, t.Outliers)
	}

	// The same recorder carries the run's metrics registry: PLT hits and
	// outliers, kernel ticks and context switches, interval histograms.
	fmt.Printf("\nmetrics:\n")
	if err := rec.Metrics().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
