// Command oschar performs the paper's §3 characterization of OS-service
// performance: per-service statistics (Fig 3), per-invocation series
// (Fig 4), and instruction x cycle behavior-point histograms (Fig 5).
//
// Usage:
//
//	oschar -bench ab-rand                         # Fig-3 style summary
//	oschar -bench ab-seq -service sys_read        # one service's profile
//	oschar -bench ab-rand -service sys_read -series   # Fig-4 series (CSV)
//	oschar -bench ab-rand -service sys_read -hist     # Fig-5 bubbles (CSV)
package main

import (
	"flag"
	"fmt"
	"os"

	"fssim/internal/core"
	"fssim/internal/machine"
	"fssim/internal/workload"
)

func main() {
	bench := flag.String("bench", "ab-rand", "benchmark name")
	service := flag.String("service", "", "restrict to one service (e.g. sys_read, Int_239)")
	series := flag.Bool("series", false, "dump the per-invocation (insts, cycles) series as CSV")
	hist := flag.Bool("hist", false, "dump the instruction x cycle bubble histogram as CSV")
	instBin := flag.Float64("instbin", 1000, "instruction bin width for -hist")
	cycleBin := flag.Float64("cyclebin", 4000, "cycle bin width for -hist")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	flag.Parse()

	prof := core.NewProfiler()
	opts := workload.DefaultOptions()
	opts.Scale = *scale
	opts.Machine.Mode = machine.FullSystem
	opts.Observer = prof.Observer()
	if _, err := workload.Run(*bench, opts); err != nil {
		fmt.Fprintf(os.Stderr, "oschar: %v\n", err)
		os.Exit(1)
	}

	for _, sp := range prof.Services() {
		if *service != "" && sp.Service.String() != *service {
			continue
		}
		switch {
		case *series:
			fmt.Printf("# %s %s: invocation,insts,cycles\n", *bench, sp.Service)
			for i, s := range sp.Series {
				fmt.Printf("%d,%d,%d\n", i, s.Insts, s.Cycles)
			}
		case *hist:
			fmt.Printf("# %s %s: inst_bin_center,cycle_bin_center,count\n", *bench, sp.Service)
			for _, c := range sp.Hist2D(*instBin, *cycleBin).Cells() {
				fmt.Printf("%.0f,%.0f,%d\n", c.X, c.Y, c.Count)
			}
		default:
			if sp.N < 2 && *service == "" {
				continue
			}
			fmt.Printf("%-18s n=%-6d cycles %9.0f ±%-9.0f IPC %.3f ±%.3f  insts %8.0f  clusters %d\n",
				sp.Service, sp.N,
				sp.Cycles.Mean(), sp.Cycles.Std(),
				sp.IPC.Mean(), sp.IPC.Std(),
				sp.Insts.Mean(), len(sp.Table.Clusters))
		}
	}
}
