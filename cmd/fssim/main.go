// Command fssim runs a single benchmark on the simulated full-system
// platform and prints a performance report.
//
// Usage:
//
//	fssim -bench ab-rand                  # detailed full-system simulation
//	fssim -bench ab-rand -mode accel      # the paper's accelerated scheme
//	fssim -bench du -mode apponly         # application-only baseline
//	fssim -bench iperf -l2 2097152        # 2MB L2
//	fssim -bench ab-rand -sample default  # stratified app-interval sampling
//	fssim -bench ab-rand -mode accel -warm-dir warm   # persist + warm-start the PLT
//	fssim -bench ab-rand -mode accel -warm-dir warm -l2 2097152 -transfer
//	                                      # no exact snapshot? import the nearest
//	                                      # eligible neighbor config's PLT instead
//	fssim -list                           # available benchmarks
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fssim/internal/core"
	"fssim/internal/machine"
	"fssim/internal/pltstore"
	"fssim/internal/sample"
	"fssim/internal/transfer"
	"fssim/internal/workload"
)

func main() {
	bench := flag.String("bench", "ab-rand", "benchmark name")
	mode := flag.String("mode", "full", "simulation mode: full | apponly | accel")
	strategy := flag.String("strategy", "statistical", "re-learning strategy for accel mode: bestmatch | eager | delayed | statistical")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	l2 := flag.Int("l2", 0, "L2 size in bytes (0 = default 1MB)")
	seed := flag.Int64("seed", 1, "simulation seed")
	inorder := flag.Bool("inorder", false, "use the in-order core model")
	nocache := flag.Bool("nocache", false, "disable the cache models (ideal memory)")
	services := flag.Bool("services", false, "print the per-service report (accel mode)")
	trace := flag.String("trace", "", "write every OS service interval as CSV to this file ('-' = stdout)")
	tlb := flag.Bool("tlb", false, "enable TLB modeling (64-entry I/D TLBs, 30-cycle walks)")
	prefetch := flag.Bool("prefetch", false, "enable the L2 next-line prefetcher")
	warmDir := flag.String("warm-dir", "", "accel mode: import a persisted PLT snapshot from this directory before simulating, and persist the learned table after (empty = off)")
	transferOn := flag.Bool("transfer", false, "accel mode with -warm-dir: when no exact snapshot exists, warm-start the PLT from the nearest transfer-eligible donor configuration instead")
	sampleSpec := flag.String("sample", "", "stratified app-interval sampling spec: a preset ("+strings.Join(sample.PresetNames(), ", ")+") or key=value list (empty = every app interval detailed)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			b, _ := workload.Lookup(name)
			kind := "compute "
			if b.OSIntensive {
				kind = "OS-heavy"
			}
			fmt.Printf("%-8s %s  %s\n", name, kind, b.Description)
		}
		return
	}

	opts := workload.DefaultOptions()
	opts.Scale = *scale
	opts.Machine.Seed = *seed
	if *l2 > 0 {
		opts.Machine.Mem = opts.Machine.Mem.WithL2Size(*l2)
	}
	if *inorder {
		opts.Machine.Core = machine.CoreInOrder
	}
	if *nocache {
		opts.Machine.WithCaches = false
	}
	if *tlb {
		opts.Machine.Mem = opts.Machine.Mem.WithTLB()
	}
	if *prefetch {
		opts.Machine.Mem = opts.Machine.Mem.WithPrefetch()
	}
	var traceW *csv.Writer
	if *trace != "" {
		out := os.Stdout
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			out = f
		}
		traceW = csv.NewWriter(out)
		defer traceW.Flush()
		traceW.Write([]string{"service", "insts", "loads", "stores",
			"branches", "cycles", "emulated", "l1d_misses", "l2_misses"})
		opts.Observer = func(r machine.IntervalRecord) {
			row := []string{
				r.Service.String(),
				strconv.FormatUint(r.Insts, 10),
				strconv.FormatUint(r.Sig.Loads, 10),
				strconv.FormatUint(r.Sig.Stores, 10),
				strconv.FormatUint(r.Sig.Branches, 10),
				strconv.FormatUint(r.Cycles, 10),
				strconv.FormatBool(r.Emulated),
				"", "",
			}
			if r.Meas != nil {
				row[7] = strconv.FormatUint(r.Meas.L1D.Misses, 10)
				row[8] = strconv.FormatUint(r.Meas.L2.Misses, 10)
			}
			traceW.Write(row)
		}
	}
	var smp *sample.Sampler
	if *sampleSpec != "" {
		spec, err := sample.ParseSpec(*sampleSpec)
		if err != nil {
			fail("%v", err)
		}
		smp = sample.New(spec, opts.Machine.Seed)
		opts.Sample = smp
	}
	var acc *core.Accelerator
	switch *mode {
	case "full":
		opts.Machine.Mode = machine.FullSystem
	case "apponly":
		opts.Machine.Mode = machine.AppOnly
	case "accel":
		opts.Machine.Mode = machine.Accelerated
		params := core.DefaultParams()
		switch *strategy {
		case "bestmatch":
			params.Strategy = core.BestMatch
		case "eager":
			params.Strategy = core.Eager
		case "delayed":
			params.Strategy = core.Delayed
		case "statistical":
			params.Strategy = core.Statistical
		default:
			fail("unknown strategy %q", *strategy)
		}
		acc = core.NewAccelerator(params)
		opts.Sink = acc
	default:
		fail("unknown mode %q", *mode)
	}

	// Warm start: import a compatible persisted PLT before simulating; a
	// stale, mismatched or corrupt snapshot silently stays cold. With
	// -transfer, a cold start first tries the nearest eligible donor from a
	// *neighbor* configuration, rescaled into low-confidence priors; an
	// ineligible or missing donor is reported and the run stays cold — a
	// transfer is never silent.
	var store *pltstore.Store
	var learnHash uint64
	warmed := false
	var prov *transfer.Provenance
	if acc != nil && *warmDir != "" {
		store = pltstore.Open(*warmDir)
		params := acc.Export().Params
		learnHash = pltstore.LearnHash(*bench, opts.Machine, params, opts.Scale, "")
		if snap, err := store.Load(*bench, learnHash); err == nil {
			warmed = acc.Import(snap.State) == nil
		}
		if !warmed && *transferOn {
			family := transfer.FamilyHash(*bench, opts.Machine, params, opts.Scale, "")
			recip := transfer.FromConfig(opts.Machine)
			if donor, dist, err := store.Nearest(family, recip); err == nil {
				model := transfer.FitAnalytic(donor.Coords, recip)
				if prior, rerr := transfer.Rescale(donor.State, model, params); rerr == nil && acc.Import(prior) == nil {
					prov = &transfer.Provenance{
						DonorBench: donor.Benchmark,
						DonorAddr:  pltstore.FormatHash(donor.Family) + "/" + pltstore.FormatHash(donor.LearnHash),
						Distance:   dist,
						Scale:      model.L2M,
						Hash:       transfer.TransferHash(donor.LearnHash, model),
					}
				}
			}
			if prov == nil {
				fmt.Fprintf(os.Stderr, "fssim: transfer: no eligible donor in %s; starting cold\n", *warmDir)
			}
		}
	}

	res, err := workload.Run(*bench, opts)
	if err != nil {
		fail("%v", err)
	}
	if store != nil {
		// Transferred tables save under a distinct learn address and carry the
		// TransferHash trailer, so they never overwrite — or later pose as —
		// the cold-learned table of the same configuration (transferred
		// snapshots are not donor-eligible: priors must not chain).
		params := acc.Export().Params
		runKey := "fssim:" + *bench
		saveLearn, xferHash := learnHash, uint64(0)
		replay := pltstore.ReplayHash(learnHash, runKey, opts.Machine.Seed)
		if prov != nil {
			saveLearn = pltstore.LearnHashWith(*bench, opts.Machine, params, opts.Scale, "", "store")
			xferHash = prov.Hash
			replay = pltstore.TransferReplayHash(saveLearn, runKey, opts.Machine.Seed, prov.Hash)
		}
		snap := &pltstore.Snapshot{
			LearnHash:    saveLearn,
			ReplayHash:   replay,
			Benchmark:    *bench,
			Key:          runKey,
			Family:       transfer.FamilyHash(*bench, opts.Machine, params, opts.Scale, ""),
			TransferHash: xferHash,
			Coords:       transfer.FromConfig(opts.Machine),
			Stats:        res.Stats,
			State:        acc.Export(),
		}
		if err := store.Save(snap); err != nil {
			fmt.Fprintf(os.Stderr, "fssim: plt snapshot not saved: %v\n", err)
		}
	}
	host := res.Wall
	st := res.Stats

	fmt.Printf("benchmark        %s (%s mode, scale %.2f)\n", *bench, opts.Machine.Mode, *scale)
	fmt.Printf("instructions     %d (user %d, OS %d = %.1f%%)\n",
		st.Insts, st.UserInsts, st.OSInsts, 100*float64(st.OSInsts)/float64(st.Insts))
	fmt.Printf("cycles           %d (IPC %.3f)\n", st.Cycles, st.IPC())
	fmt.Printf("OS intervals     %d (context switches %d, timer ticks %d)\n",
		st.Intervals, res.Kernel.ContextSwitches(), res.Kernel.Ticks())
	if opts.Machine.WithCaches {
		l1i, l1d, l2r := st.MissRates()
		fmt.Printf("miss rates       L1I %.3f%%  L1D %.3f%%  L2 %.3f%%  (DRAM %d)\n",
			100*l1i, 100*l1d, 100*l2r, st.DRAM)
	}
	fmt.Printf("branches         %d lookups, %.2f%% mispredicted\n",
		st.BrLookups, 100*float64(st.BrMispreds)/float64(max64(st.BrLookups, 1)))
	if acc != nil {
		sum := acc.Summary()
		warmNote := ""
		if warmed {
			warmNote = " (warm-started)"
		}
		fmt.Printf("acceleration     coverage %.1f%% of %d invocations; %d clusters over %d services; %d re-learns; %d outliers%s\n",
			100*sum.Coverage(), sum.Learned+sum.Predicted, sum.Clusters, sum.Services,
			sum.Relearns, sum.Outliers, warmNote)
		fmt.Printf("fast-forwarded   %d of %d instructions (%.1f%%)\n",
			st.EmuInsts, st.Insts, 100*float64(st.EmuInsts)/float64(st.Insts))
		if prov != nil {
			fmt.Printf("plt              %s (distance %.1f)\n", prov, prov.Distance)
		}
		if *services {
			fmt.Println("\nservice          seen   clusters  predicted  outliers  relearns")
			for _, row := range acc.Report() {
				fmt.Printf("%-16s %-6d %-9d %-10d %-9d %d\n",
					row.Service, row.Seen, row.Clusters, row.Predicted, row.Outliers, row.Relearns)
			}
		}
	}
	if smp != nil {
		rep := smp.Report()
		fmt.Printf("sampling         %s\n", rep.Summary(st.Cycles))
	}
	fmt.Printf("host time        %.2fs (%.0f ns/inst)\n",
		host.Seconds(), float64(host.Nanoseconds())/float64(st.Insts))
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fssim: "+format+"\n", args...)
	os.Exit(1)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
