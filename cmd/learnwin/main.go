// Command learnwin computes the statically-derived initial learning window
// of paper §4.3 (Fig 7): the smallest number of contiguous OS-service
// invocations that must be fully simulated so that, with the requested
// degree of confidence, every behavior cluster with probability of
// occurrence >= p_min appears at least once.
//
// Usage:
//
//	learnwin                      # the paper's sweep (Fig 7)
//	learnwin -pmin 0.03 -doc 0.95 # one point (the paper's choice: ~100)
package main

import (
	"flag"
	"fmt"

	"fssim/internal/stats"
)

func main() {
	pmin := flag.Float64("pmin", 0, "minimum probability of occurrence (0 = sweep)")
	doc := flag.Float64("doc", 0.95, "degree of confidence")
	flag.Parse()

	if *pmin > 0 {
		n := stats.LearningWindow(*pmin, *doc)
		fmt.Printf("p_min=%.4f DoC=%.2f -> learning window N=%d\n", *pmin, *doc, n)
		fmt.Printf("check: P(cluster seen at least once in %d trials) = %.4f\n",
			n, stats.AtLeastOnce(*pmin, n))
		return
	}
	fmt.Println("p_min    N @ 95%   N @ 99%")
	for p := 0.005; p <= 0.2001; p += 0.005 {
		fmt.Printf("%.3f    %-8d %d\n",
			p, stats.LearningWindow(p, 0.95), stats.LearningWindow(p, 0.99))
	}
}
