// Command fssimd is the long-lived serving front-end over the experiment
// scheduler: an HTTP/JSON server that lets many concurrent clients submit
// (benchmark, mode, L2, scale, seed, faults) simulation requests and share
// the deterministic, RunKey-memoized results.
//
// Usage:
//
//	fssimd                         # serve on :8080
//	fssimd -addr :9090             # another port
//	fssimd -queue 128 -workers 8   # admission bound and worker-pool width
//	fssimd -deadline 30s           # per-request result deadline (and cap)
//	fssimd -timeout 2m             # per-simulation wall-clock limit
//	fssimd -drain-timeout 15s      # graceful-drain budget on SIGTERM/SIGINT
//	fssimd -trace trace.json -metrics metrics.txt  # artifacts flushed on drain
//	fssimd -warm-dir warm          # persist learned PLTs; replay across restarts
//	fssimd -warm-dir warm -transfer
//	                               # serve "transfer":"store" requests from the
//	                               # nearest eligible donor snapshot
//	fssimd -warm-dir warm -peers http://n2:8080,http://n3:8080
//	                               # anti-entropy: pull peers' verified PLTs
//
// Endpoints:
//
//	POST /v1/runs            submit a run; body {"benchmark": "ab-rand", ...}
//	GET  /v1/runs/{id}       a completed run's (byte-identical) result
//	GET  /v1/runs/{id}/trace the run's Chrome trace-event JSON (with -trace)
//	GET  /v1/plt             index of persisted PLT snapshots (with -warm-dir)
//	GET  /v1/plt/{benchmark} the newest persisted PLT snapshot (with -warm-dir)
//	GET  /v1/plt/{benchmark}/{hash}  one exact snapshot (the gossip fetch path)
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while draining)
//	GET  /metrics            serving-path and scheduler counters
//
// Robustness contract: requests beyond the admission queue get 429 +
// Retry-After; per-(benchmark, mode) circuit breakers fast-fail 503 under
// failure storms and recover via half-open probes; SIGTERM/SIGINT stops
// admission, finishes or cancels in-flight runs within the drain budget,
// flushes artifacts (bounded — completed work is persisted, wedged runs are
// skipped), and exits 0. A second SIGTERM/SIGINT forces immediate exit 1,
// and a watchdog forces exit 1 if the drain itself wedges; either way the
// durable write discipline guarantees the warm store is never torn.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fssim/internal/fleet"
	"fssim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "admission bound: max requests waiting or running; beyond it, 429")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 2*time.Minute, "default and maximum per-request result deadline")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget before in-flight runs are canceled (second signal forces exit)")
	timeout := flag.Duration("timeout", 0, "per-simulation wall-clock limit (0 = the request deadline)")
	retries := flag.Int("retries", 0, "extra attempts for a failed simulation")
	scale := flag.Float64("scale", 1.0, "default workload size multiplier for requests that leave scale unset")
	seed := flag.Int64("seed", 1, "default simulation seed for requests that leave seed unset")
	traceOut := flag.String("trace", "", "record every simulation; flush a trace file on drain (.jsonl = JSON lines, else Chrome trace-event JSON)")
	metricsOut := flag.String("metrics", "", "flush per-run metrics registries plus harness counters to this file on drain (- = stdout)")
	doTrace := flag.Bool("record", false, "record simulations (enables GET /v1/runs/{id}/trace) even without -trace/-metrics")
	warmDir := flag.String("warm-dir", "", "persist learned PLT snapshots here and replay identical accelerated requests across restarts (empty = off)")
	transferOn := flag.Bool("transfer", false, "serve \"transfer\":\"store\" requests by importing the nearest eligible donor PLT from -warm-dir (cross-config transfer; requires -warm-dir)")
	peers := flag.String("peers", "", "comma-separated peer base URLs for PLT anti-entropy gossip (requires -warm-dir)")
	gossipEvery := flag.Duration("gossip-interval", 5*time.Second, "anti-entropy period")
	flag.Parse()

	cfg := server.Config{
		Addr:         *addr,
		Queue:        *queue,
		Workers:      *workers,
		Deadline:     *deadline,
		DrainTimeout: *drain,
		RunTimeout:   *timeout,
		Retries:      *retries,
		Scale:        *scale,
		Seed:         *seed,
		Trace:        *doTrace,
		TracePath:    *traceOut,
		MetricsPath:  *metricsOut,
		WarmDir:      *warmDir,
		Transfer:     *transferOn,
	}
	if *transferOn && *warmDir == "" {
		fmt.Fprintln(os.Stderr, "fssimd: -transfer requires -warm-dir (donor snapshots come from the warm store)")
		os.Exit(2)
	}

	// SIGTERM (orchestrators) and SIGINT (terminals) both start the drain:
	// stop admitting, resolve in-flight runs against the drain budget, flush
	// artifacts, exit 0. A second signal — or a wedged drain outliving its
	// watchdog — forces immediate exit 1: shutdown is always bounded, and the
	// durable write discipline keeps the warm store consistent either way.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "fssimd: %v: draining (budget %v; signal again to force exit)\n", sig, *drain)
		cancel()
		// Watchdog: even if the drain path itself wedges (a run that ignores
		// cancellation, a hung filesystem), the process still exits. The
		// budget covers the in-flight wait plus the bounded artifact flush.
		time.AfterFunc(2*(*drain)+10*time.Second, func() {
			fmt.Fprintln(os.Stderr, "fssimd: drain watchdog expired: forcing exit")
			os.Exit(1)
		})
		sig = <-sigc
		fmt.Fprintf(os.Stderr, "fssimd: %v: forced exit\n", sig)
		os.Exit(1)
	}()

	s := server.New(cfg)

	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		store := s.Scheduler().WarmStore()
		if store == nil {
			fmt.Fprintln(os.Stderr, "fssimd: -peers requires -warm-dir (gossip spreads persisted PLT snapshots)")
			os.Exit(2)
		}
		g, err := fleet.NewGossiper(fleet.GossipConfig{
			Peers:    list,
			Interval: *gossipEvery,
			Retry:    server.DefaultRetryPolicy(),
		}, store, s.Registry())
		if err != nil {
			fmt.Fprintf(os.Stderr, "fssimd: %v\n", err)
			os.Exit(2)
		}
		go g.Run(ctx)
	}

	go func() {
		fmt.Fprintf(os.Stderr, "fssimd: serving on %s (queue %d, deadline %v, drain %v)\n",
			s.Addr(), *queue, *deadline, *drain)
	}()
	if err := s.Serve(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fssimd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fssimd: drained cleanly")
}
