// Command fsbench regenerates the paper's evaluation artifacts: every figure
// (1-12) and table (1-2), or any subset, printing the same rows/series the
// paper reports.
//
// Usage:
//
//	fsbench                  # run everything at default scale
//	fsbench -exp fig8        # one artifact
//	fsbench -exp fig2,tab2   # a subset
//	fsbench -scale 0.5       # half-size workloads (faster, noisier)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fssim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig1..fig12, tab1, tab2) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-6s %s\n", id, experiments.Title(id))
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
