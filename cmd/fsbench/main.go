// Command fsbench regenerates the paper's evaluation artifacts: every figure
// (1-12) and table (1-2), or any subset, printing the same rows/series the
// paper reports.
//
// The harness runs experiments over a shared scheduler: each distinct
// (benchmark, mode, L2, scale, seed, options) simulation executes exactly
// once per invocation, and independent simulations run concurrently on a
// worker pool. Tables are byte-identical at any -j because every run's seed
// is derived from the base seed and its run key, never from scheduling order.
//
// Usage:
//
//	fsbench                  # run everything at default scale
//	fsbench -exp fig8        # one artifact
//	fsbench -exp fig2,tab2   # a subset
//	fsbench -scale 0.5       # half-size workloads (faster, noisier)
//	fsbench -j 8             # up to 8 concurrent simulations
//	fsbench -j 1             # serial (tables identical to any other -j)
//	fsbench -pincosts        # pin tab1/tab2 host-cost columns (reproducible)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fssim/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig1..fig12, tab1, tab2) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	pincosts := flag.Bool("pincosts", false, "pin tab1/tab2 mode costs to reference values instead of timing this host")
	var parallel int
	flag.IntVar(&parallel, "parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&parallel, "j", 0, "shorthand for -parallel")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, err := experiments.Title(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %s\n", id, title)
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Parallelism: parallel}
	if *pincosts {
		mc := experiments.ReferenceModeCosts
		cfg.ModeCosts = &mc
	}

	start := time.Now()
	sched := experiments.NewScheduler(cfg)
	results, err := sched.RunMany(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
		os.Exit(1)
	}
	for _, res := range results {
		fmt.Println(res.Render())
	}
	st := sched.Stats()
	fmt.Printf("suite: %d experiments, %d distinct simulations (%d requests, %d served from cache), sim %.1fs in %.1fs wall at -j %d\n",
		len(results), st.Distinct, st.Hits+st.Misses, st.Hits,
		st.SimWall.Seconds(), time.Since(start).Seconds(), sched.Parallelism())
}
