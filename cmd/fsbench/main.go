// Command fsbench regenerates the paper's evaluation artifacts: every figure
// (1-12) and table (1-2), or any subset, printing the same rows/series the
// paper reports.
//
// The harness runs experiments over a shared scheduler: each distinct
// (benchmark, mode, L2, scale, seed, options) simulation executes exactly
// once per invocation, and independent simulations run concurrently on a
// worker pool. Tables are byte-identical at any -j because every run's seed
// is derived from the base seed and its run key, never from scheduling order.
//
// Usage:
//
//	fsbench                  # run everything at default scale
//	fsbench -exp fig8        # one artifact
//	fsbench -exp fig2,tab2   # a subset
//	fsbench -scale 0.5       # half-size workloads (faster, noisier)
//	fsbench -j 8             # up to 8 concurrent simulations
//	fsbench -j 1             # serial (tables identical to any other -j)
//	fsbench -pincosts        # pin tab1/tab2 host-cost columns (reproducible)
//	fsbench -faults storm    # inject the "storm" fault plan into every run
//	fsbench -sample default  # stratified app-interval sampling on every run
//	fsbench -timeout 2m      # abort any single simulation after 2 minutes
//	fsbench -trace out.json  # record every run; export Chrome trace JSON
//	fsbench -trace out.jsonl # ... or compact JSON lines (by extension)
//	fsbench -metrics -       # dump per-run metrics registries (- = stdout)
//	fsbench -warm-dir warm   # persist learned PLTs; replay identical runs
//	                         # across invocations (tables stay byte-identical)
//	fsbench -warm-dir warm -transfer
//	                         # warm-start each accelerated run from the nearest
//	                         # eligible donor snapshot (cross-config transfer)
//
// Ctrl-C cancels cleanly: in-flight simulations abort cooperatively, and
// experiments that already finished are still printed; the artifact flush is
// bounded by -drain-timeout, so completed runs' snapshots and traces are
// persisted without a hung run wedging exit. A second Ctrl-C forces exit 1.
// A run that fails (panic, timeout) is reported per run; every other run
// completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"fssim/internal/experiments"
	"fssim/internal/faults"
	"fssim/internal/sample"
	"fssim/internal/server"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (fig1..fig12, tab1, tab2, faults) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	pincosts := flag.Bool("pincosts", false, "pin tab1/tab2 mode costs to reference values instead of timing this host")
	timeout := flag.Duration("timeout", 0, "per-simulation wall-clock limit (0 = unlimited)")
	faultPlan := flag.String("faults", "", "fault plan injected into every simulation ("+strings.Join(faults.Names(), ", ")+"; empty = none)")
	sampleSpec := flag.String("sample", "", "stratified app-interval sampling spec applied to every simulation ("+strings.Join(sample.PresetNames(), ", ")+" or key=value list; empty = none)")
	retries := flag.Int("retries", 0, "extra attempts for a failed simulation, each with a fresh derived seed")
	traceOut := flag.String("trace", "", "record every simulation and export a trace file (.jsonl = JSON lines, anything else = Chrome trace-event JSON for Perfetto)")
	metricsOut := flag.String("metrics", "", "write per-run metrics registries plus harness counters to this file (- = stdout)")
	warmDir := flag.String("warm-dir", "", "persist learned PLT snapshots here and replay identical accelerated runs across invocations (empty = off)")
	transferOn := flag.Bool("transfer", false, "warm-start every accelerated run's PLT from the nearest eligible donor snapshot in -warm-dir (cross-config transfer; requires -warm-dir)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "budget for the exit-time artifact and snapshot flush (runs still executing at the deadline are skipped)")
	var parallel int
	flag.IntVar(&parallel, "parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&parallel, "j", 0, "shorthand for -parallel")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, err := experiments.Title(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %s\n", id, title)
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	// Ctrl-C cancels the context; in-flight simulations abort cooperatively
	// and already-finished experiments still render below. A second Ctrl-C
	// forces immediate exit 1 — the durable write discipline keeps the warm
	// store consistent even then.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fsbench: interrupt: canceling in-flight simulations (interrupt again to force exit)")
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "fsbench: second interrupt: forced exit")
		os.Exit(1)
	}()

	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Parallelism: parallel,
		Timeout: *timeout, Retries: *retries, FaultPlan: *faultPlan,
		Sample:   *sampleSpec,
		Trace:    *traceOut != "" || *metricsOut != "",
		WarmDir:  *warmDir,
		Transfer: *transferOn,
	}.WithContext(ctx)
	if *pincosts {
		mc := experiments.ReferenceModeCosts
		cfg.ModeCosts = &mc
	}

	start := time.Now()
	sched := experiments.NewScheduler(cfg)
	results, err := sched.RunMany(ids)
	ok := 0
	for _, res := range results {
		if res != nil {
			fmt.Println(res.Render())
			ok++
		}
	}
	if err != nil {
		// errors.Join renders one line per failed experiment; each line names
		// the run and cause (see experiments.RunError).
		fmt.Fprintf(os.Stderr, "fsbench: %d of %d experiments failed:\n%v\n", len(results)-ok, len(results), err)
	}
	// Artifact export goes through the same drain path the serving front-end
	// uses on SIGTERM: it runs even when the suite was interrupted (Ctrl-C)
	// or partially failed, and canceled runs' partial traces are flushed too
	// (labeled "!aborted"), so an interrupted invocation still leaves usable
	// traces and metrics. One artifact failing does not skip the other.
	if *traceOut != "" || *metricsOut != "" {
		fctx, fcancel := context.WithTimeout(context.Background(), *drain)
		werr := server.WriteArtifactsCtx(fctx, sched, *traceOut, *metricsOut)
		fcancel()
		if werr != nil {
			fmt.Fprintf(os.Stderr, "fsbench: %v\n", werr)
			os.Exit(1)
		}
		if *traceOut != "" {
			fmt.Printf("trace: wrote %s\n", *traceOut)
		}
	}
	// The authoritative snapshot sweep: when WriteArtifacts didn't run (no
	// -trace/-metrics), an invocation with a warm dir still leaves every
	// completed accelerated run's learned table on disk before exiting —
	// bounded by the same drain budget so a wedged run cannot hang exit.
	if *warmDir != "" && *traceOut == "" && *metricsOut == "" {
		fctx, fcancel := context.WithTimeout(context.Background(), *drain)
		_, werr := sched.FlushWarmCtx(fctx)
		fcancel()
		if werr != nil {
			fmt.Fprintf(os.Stderr, "fsbench: plt snapshot flush: %v\n", werr)
		}
	}
	st := sched.Stats()
	fmt.Printf("suite: %d/%d experiments, %d distinct simulations (%d requests, %d served from cache, %d failed, %d retried), sim %.1fs in %.1fs wall at -j %d\n",
		ok, len(results), st.Distinct, st.Hits+st.Misses, st.Hits, st.Failures, st.Retries,
		st.SimWall.Seconds(), time.Since(start).Seconds(), sched.Parallelism())
	if *warmDir != "" {
		fmt.Printf("plt: %d replayed warm, %d cold, %d invalidated, %d snapshots saved, %d instances learned\n",
			st.WarmHits, st.WarmMisses, st.WarmInvalid, st.WarmSaves, st.PLTLearned)
	}
	if st.TransferHits > 0 || st.TransferRejected > 0 {
		fmt.Printf("transfer: %d runs imported donor priors, %d directives rejected (cold fallback)\n",
			st.TransferHits, st.TransferRejected)
		for _, rec := range sched.Transfers() {
			fmt.Printf("plt: %s: %s\n", rec.Key, rec.Prov)
		}
	}
	if *sampleSpec != "" || st.SampledRuns > 0 {
		red := 1.0
		if st.SampleDetailed > 0 {
			red = float64(st.SampleDetailed+st.SampleExtrapolated) / float64(st.SampleDetailed)
		}
		fmt.Printf("sample: %d sampled runs, %d detailed + %d extrapolated app intervals (%.1fx reduction)\n",
			st.SampledRuns, st.SampleDetailed, st.SampleExtrapolated, red)
	}
	if err != nil {
		os.Exit(1)
	}
}
