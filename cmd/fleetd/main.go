// Command fleetd is the fleet routing tier: one HTTP front-end that shards
// simulation requests over N fssimd backends with a consistent-hash ring
// keyed by the deterministic run id, so each backend's RunKey memo cache
// holds its shard of the keyspace instead of duplicating all of it.
//
// Failure handling leans on the system's core invariant — every response is
// a byte-identical pure function of the normalized request — so a request
// that hits a dead, draining or erroring backend simply fails over to the
// next ring node. Backends are probed via /readyz and ejected when they turn
// into outliers; slow idempotent GETs are hedged; and when fewer than a
// quorum of backends are healthy the router degrades to running requests on
// an embedded local scheduler (responses marked X-Fssim-Fleet: degraded).
//
// Usage:
//
//	fleetd -backends http://n1:8080,http://n2:8080,http://n3:8080
//	fleetd -addr :8100 -quorum 2      # routable while >= 2 backends healthy
//	fleetd -hedge-after 50ms          # fixed hedging delay (default adaptive)
//	fleetd -local=false               # fail closed instead of degrading
//
// The router mirrors the fssimd endpoint surface (POST /v1/runs,
// GET /v1/runs/{id}[/trace], GET /v1/plt...), plus its own /healthz, /readyz
// (fleet health summary) and /metrics (fleet.* instruments).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fssim/internal/fleet"
	"fssim/internal/server"
	"fssim/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8100", "listen address")
	backends := flag.String("backends", "", "comma-separated fssimd base URLs (required)")
	replicas := flag.Int("replicas", fleet.DefaultReplicas, "virtual ring points per backend")
	quorum := flag.Int("quorum", 0, "min healthy backends for fleet routing (0 = majority); below it requests run locally")
	passes := flag.Int("passes", 2, "full failover sweeps over a key's ring sequence before giving up")
	attemptTimeout := flag.Duration("attempt-timeout", time.Minute, "per-backend attempt bound")
	hedgeAfter := flag.Duration("hedge-after", 0, "idempotent-GET hedging delay (0 = adaptive from observed latency, negative = off)")
	probeEvery := flag.Duration("probe-interval", time.Second, "backend /readyz probe period")
	scale := flag.Float64("scale", 1.0, "default workload scale (must match the backends' -scale)")
	seed := flag.Int64("seed", 1, "default seed (must match the backends' -seed)")
	local := flag.Bool("local", true, "run requests on an embedded scheduler when the fleet is below quorum")
	localWorkers := flag.Int("local-workers", 0, "embedded scheduler worker-pool width (0 = GOMAXPROCS)")
	flag.Parse()

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "fleetd: -backends is required (comma-separated base URLs)")
		os.Exit(2)
	}

	var localSrv *server.Server
	if *local {
		localSrv = server.New(server.Config{
			Workers: *localWorkers,
			Scale:   *scale,
			Seed:    *seed,
		})
	}

	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Addr:           *addr,
		Backends:       list,
		Replicas:       *replicas,
		Quorum:         *quorum,
		Passes:         *passes,
		AttemptTimeout: *attemptTimeout,
		HedgeAfter:     *hedgeAfter,
		Scale:          *scale,
		Seed:           *seed,
		Local:          localSrv,
		Health:         fleet.HealthConfig{Interval: *probeEvery},
	}, trace.NewRegistry())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	q := *quorum
	if q <= 0 {
		q = len(list)/2 + 1
	}
	go func() {
		fmt.Fprintf(os.Stderr, "fleetd: routing on %s over %d backends (quorum %d)\n",
			rt.Addr(), len(list), q)
	}()
	if err := rt.Serve(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fleetd: drained cleanly")
}
