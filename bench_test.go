// Package fssim's benchmark harness: one testing.B benchmark per paper
// artifact (Figures 1-12, Tables 1-2), the DESIGN.md §9 ablations, and
// micro-benchmarks of the simulator substrate. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benches execute the corresponding experiment at a reduced
// scale and report the headline quantity as a custom metric; run
// `fsbench -exp all` for the full-scale paper-formatted tables.
package fssim_test

import (
	"context"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"fssim/internal/cache"
	"fssim/internal/core"
	"fssim/internal/cpu"
	"fssim/internal/experiments"
	"fssim/internal/isa"
	"fssim/internal/machine"
	"fssim/internal/memsys"
	"fssim/internal/pltstore"
	"fssim/internal/sample"
	"fssim/internal/server"
	"fssim/internal/workload"
)

const benchScale = 0.5 // keep the full -bench=. sweep to a few minutes

func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	cfg := experiments.DefaultConfig()
	cfg.Scale = benchScale
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// cell parses a numeric table cell ("12.3%", "4.5x", "1.234").
func cell(s string) float64 {
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSpace(s), "%"), "x")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// BenchmarkFig1 regenerates Figure 1 and reports the worst-case
// full-system/app-only execution-time ratio across the OS-intensive set.
func BenchmarkFig1(b *testing.B) {
	res := runExperiment(b, "fig1")
	worst := 0.0
	for _, row := range res.Table.Rows[:5] {
		if r := cell(row[2]); r > worst {
			worst = r
		}
	}
	b.ReportMetric(worst, "worst-time-ratio")
}

// BenchmarkFig2 regenerates Figure 2 and reports the largest full-system
// speedup from doubling the L2 (the effect app-only simulation misses).
func BenchmarkFig2(b *testing.B) {
	res := runExperiment(b, "fig2")
	best := 0.0
	for _, row := range res.Table.Rows[:5] {
		if r := cell(row[2]); r > best {
			best = r
		}
	}
	b.ReportMetric(best, "max-L2-speedup")
}

// BenchmarkFig3 regenerates the per-service characterization.
func BenchmarkFig3(b *testing.B) {
	res := runExperiment(b, "fig3")
	b.ReportMetric(float64(len(res.Table.Rows)), "service-rows")
}

// BenchmarkFig4 regenerates the sys_read invocation series summary.
func BenchmarkFig4(b *testing.B) {
	res := runExperiment(b, "fig4")
	b.ReportMetric(cell(res.Table.Rows[0][7]), "behavior-levels")
}

// BenchmarkFig5 regenerates the bubble histogram.
func BenchmarkFig5(b *testing.B) {
	res := runExperiment(b, "fig5")
	b.ReportMetric(float64(len(res.Table.Rows)), "occupied-bins")
}

// BenchmarkFig6 regenerates the CV comparison and reports the average
// execution-time CV reduction factor from scaled clustering.
func BenchmarkFig6(b *testing.B) {
	res := runExperiment(b, "fig6")
	avg := res.Table.Rows[len(res.Table.Rows)-1]
	if c := cell(avg[2]); c > 0 {
		b.ReportMetric(cell(avg[1])/c, "time-CV-reduction")
	}
}

// BenchmarkFig7 regenerates the learning-window curve.
func BenchmarkFig7(b *testing.B) {
	res := runExperiment(b, "fig7")
	for _, row := range res.Table.Rows {
		if row[0] == "0.030" {
			b.ReportMetric(cell(row[1]), "window@pmin3%")
		}
	}
}

// BenchmarkFig8 regenerates the headline accuracy result and reports the
// average absolute execution-time prediction error in percent
// (paper: 3.2%).
func BenchmarkFig8(b *testing.B) {
	res := runExperiment(b, "fig8")
	sum := 0.0
	for _, row := range res.Table.Rows {
		sum += cell(row[7])
	}
	b.ReportMetric(sum/float64(len(res.Table.Rows)), "avg-err-%")
}

// BenchmarkFig9 regenerates the miss-rate comparison and reports the worst
// absolute miss-rate difference in percentage points.
func BenchmarkFig9(b *testing.B) {
	res := runExperiment(b, "fig9")
	worst := 0.0
	for _, row := range res.Table.Rows {
		if d := cell(row[7]); d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worst-missrate-diff-pp")
}

// BenchmarkFig10 regenerates the three-way L2 study and reports how closely
// the accelerated simulator tracks the full-system speedup (ratio of
// averages; 1.0 = perfect).
func BenchmarkFig10(b *testing.B) {
	res := runExperiment(b, "fig10")
	var full, pred float64
	for _, row := range res.Table.Rows {
		full += cell(row[2])
		pred += cell(row[3])
	}
	b.ReportMetric(pred/full, "pred/full-speedup")
}

// BenchmarkFig11 regenerates the strategy comparison and reports the
// Statistical strategy's average coverage (paper: 89%).
func BenchmarkFig11(b *testing.B) {
	res := runExperiment(b, "fig11")
	for _, row := range res.Table.Rows {
		if row[0] == "average" && row[1] == "Statistical" {
			b.ReportMetric(cell(row[2]), "statistical-coverage-%")
		}
	}
}

// BenchmarkFig12 regenerates the L2-size error sweep and reports the average
// error at 4MB.
func BenchmarkFig12(b *testing.B) {
	res := runExperiment(b, "fig12")
	avg := res.Table.Rows[len(res.Table.Rows)-1]
	b.ReportMetric(cell(avg[3]), "avg-err-4MB-%")
}

// BenchmarkTable1 measures the simulation-mode slowdown ratios.
func BenchmarkTable1(b *testing.B) {
	res := runExperiment(b, "tab1")
	last := res.Table.Rows[len(res.Table.Rows)-1]
	b.ReportMetric(cell(last[2]), "ooo-cache-slowdown")
}

// BenchmarkTable2 computes the Eq-10 speedup estimates and reports the
// geometric mean at the paper's R=133 (paper: 4.9x).
func BenchmarkTable2(b *testing.B) {
	res := runExperiment(b, "tab2")
	g := res.Table.Rows[len(res.Table.Rows)-1]
	b.ReportMetric(cell(g[3]), "gmean-speedup")
}

// --- Ablations (DESIGN.md §9) ----------------------------------------------

func accelError(b *testing.B, bench string, tweakM func(*machine.Config),
	tweakP func(*core.Params)) (errFrac, coverage float64) {
	return accelErrorAt(b, bench, benchScale, tweakM, tweakP)
}

// accelErrorAt runs the full-vs-accelerated comparison at an explicit scale;
// the injection ablations use full scale, where per-service instance counts
// are large enough for the effect sizes to dominate sampling noise.
func accelErrorAt(b *testing.B, bench string, scale float64, tweakM func(*machine.Config),
	tweakP func(*core.Params)) (errFrac, coverage float64) {
	b.Helper()
	opts := workload.DefaultOptions()
	opts.Scale = scale
	full, err := workload.Run(bench, opts)
	if err != nil {
		b.Fatal(err)
	}
	o := workload.DefaultOptions()
	o.Scale = scale
	o.Machine.Mode = machine.Accelerated
	if tweakM != nil {
		tweakM(&o.Machine)
	}
	params := core.DefaultParams()
	if tweakP != nil {
		tweakP(&params)
	}
	acc := core.NewAccelerator(params)
	o.Sink = acc
	res, err := workload.Run(bench, o)
	if err != nil {
		b.Fatal(err)
	}
	e := math.Abs(float64(res.Stats.Cycles)-float64(full.Stats.Cycles)) /
		float64(full.Stats.Cycles)
	return e, acc.Summary().Coverage()
}

// BenchmarkAblationClustering compares the paper's scaled (±5%) clusters
// against fixed ±150-instruction bins (paper §4.2's rejected alternative).
func BenchmarkAblationClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scaledErr, scaledCov := accelError(b, "ab-seq", nil, nil)
		fixedErr, fixedCov := accelError(b, "ab-seq", nil,
			func(p *core.Params) { p.FixedRange = 150 })
		b.ReportMetric(100*scaledErr, "scaled-err-%")
		b.ReportMetric(100*fixedErr, "fixed-err-%")
		b.ReportMetric(100*scaledCov, "scaled-cov-%")
		b.ReportMetric(100*fixedCov, "fixed-cov-%")
	}
}

// BenchmarkAblationWarmup compares delayed initial learning (skip 5, the
// paper's §4.4 cold-start guard) against learning from the first invocation.
func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		onErr, _ := accelError(b, "du", nil, nil)
		offErr, _ := accelError(b, "du", nil, func(p *core.Params) { p.WarmupSkip = 0 })
		b.ReportMetric(100*onErr, "skip5-err-%")
		b.ReportMetric(100*offErr, "skip0-err-%")
	}
}

// BenchmarkAblationPollution compares accuracy with and without the
// prediction side-effect models: cache pollution injection (paper §4.5) and
// bus-occupancy injection (this implementation's extension).
func BenchmarkAblationPollution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		onErr, _ := accelErrorAt(b, "ab-rand", 1.0, nil, nil)
		noPollErr, _ := accelErrorAt(b, "ab-rand", 1.0,
			func(m *machine.Config) { m.NoPollution = true }, nil)
		noBusErr, _ := accelErrorAt(b, "ab-rand", 1.0,
			func(m *machine.Config) { m.NoBusInjection = true }, nil)
		b.ReportMetric(100*onErr, "both-on-err-%")
		b.ReportMetric(100*noPollErr, "no-pollution-err-%")
		b.ReportMetric(100*noBusErr, "no-bus-err-%")
	}
}

// BenchmarkAblationWindow sweeps the initial learning window around the
// statically derived ~100 (paper Fig 7 / §4.3), trading coverage for
// accuracy.
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{25, 50, 100, 200} {
		w := w
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, cov := accelError(b, "ab-rand", nil,
					func(p *core.Params) { p.LearnWindow = w })
				b.ReportMetric(100*e, "err-%")
				b.ReportMetric(100*cov, "coverage-%")
			}
		})
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

func instStream() []isa.Inst {
	s := make([]isa.Inst, 0, 1024)
	pc := uint64(0x1000)
	for i := 0; len(s) < cap(s); i++ {
		switch i % 4 {
		case 0:
			s = append(s, isa.Inst{Op: isa.ALU, PC: pc, Dep: 4})
		case 1:
			s = append(s, isa.Inst{Op: isa.LOAD, PC: pc + 4,
				Addr: 0x10_0000 + uint64(i%4096)*64, Size: 8, Dep: 1})
		case 2:
			s = append(s, isa.Inst{Op: isa.ALU, PC: pc + 8, Dep: 1})
		default:
			s = append(s, isa.Inst{Op: isa.BRANCH, PC: pc + 12, Taken: true, Target: pc})
		}
	}
	return s
}

// BenchmarkOOOCore measures the detailed out-of-order model's host cost per
// simulated instruction.
func BenchmarkOOOCore(b *testing.B) {
	core := cpu.NewOOO(cpu.DefaultConfig(), memsys.New(memsys.DefaultConfig()))
	s := instStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Exec(&s[i%len(s)], cache.OwnerApp)
	}
}

// BenchmarkInOrderCore measures the in-order model's host cost.
func BenchmarkInOrderCore(b *testing.B) {
	core := cpu.NewInOrder(cpu.DefaultConfig(), memsys.New(memsys.DefaultConfig()))
	s := instStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Exec(&s[i%len(s)], cache.OwnerApp)
	}
}

// BenchmarkCacheAccess measures the raw cache model.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", Size: 1 << 20, Assoc: 8, BlockSize: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%65536)*64, 1, false, cache.OwnerApp)
	}
}

// BenchmarkFullSystemSimulation measures end-to-end detailed simulation
// throughput (simulated instructions per host second) on the web workload.
func BenchmarkFullSystemSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := workload.DefaultOptions()
		opts.Scale = 0.25
		res, err := workload.Run("ab-rand", opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Insts), "sim-insts/op")
	}
}

// BenchmarkAcceleratedSimulation measures the same workload under the
// paper's scheme, for a direct wall-clock speedup comparison.
func BenchmarkAcceleratedSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := workload.DefaultOptions()
		opts.Scale = 0.25
		opts.Machine.Mode = machine.Accelerated
		opts.Sink = core.NewAccelerator(core.DefaultParams())
		res, err := workload.Run("ab-rand", opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Insts), "sim-insts/op")
	}
}

// BenchmarkSampledVsFullRun measures the stratified-sampling fast path
// against the full run it replaces: the timed loop is the sampled run; the
// full-detail baseline executes once outside it. The custom metrics report
// the estimator's quality — app-side detailed-interval reduction, the
// extrapolated-cycles error against ground truth, and the 95% CI half-width
// — alongside the wall-clock ratio the ns/op column implies.
func BenchmarkSampledVsFullRun(b *testing.B) {
	full := func() workload.Result {
		opts := workload.DefaultOptions()
		opts.Scale = 0.25
		res, err := workload.Run("ab-rand", opts)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}()
	spec, err := sample.ParseSpec("default")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := workload.DefaultOptions()
		opts.Scale = 0.25
		smp := sample.New(spec, opts.Machine.Seed)
		opts.Sample = smp
		res, err := workload.Run("ab-rand", opts)
		if err != nil {
			b.Fatal(err)
		}
		rep := smp.Report()
		errPct := 100 * (float64(res.Stats.Cycles) - float64(full.Stats.Cycles)) /
			float64(full.Stats.Cycles)
		b.ReportMetric(rep.Reduction(), "app-detail-reduction")
		b.ReportMetric(math.Abs(errPct), "cycles-err-%")
		b.ReportMetric(100*rep.RelCI(res.Stats.Cycles), "ci95-%")
	}
}

// BenchmarkExtensionMixSignature evaluates the paper's named future-work
// direction (§3): extending the signature from the instruction count alone
// to the emulation-observable instruction mix (count + loads + stores +
// branches). Finer signatures can separate aliased behavior points at some
// cost in coverage.
func BenchmarkExtensionMixSignature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plainErr, plainCov := accelError(b, "ab-seq", nil, nil)
		mixErr, mixCov := accelError(b, "ab-seq", nil,
			func(p *core.Params) { p.MixSignature = true })
		b.ReportMetric(100*plainErr, "insts-sig-err-%")
		b.ReportMetric(100*mixErr, "mix-sig-err-%")
		b.ReportMetric(100*plainCov, "insts-sig-cov-%")
		b.ReportMetric(100*mixCov, "mix-sig-cov-%")
	}
}

// BenchmarkExtensionTLB measures the effect of enabling TLB modeling (not
// part of the paper's Simics configuration): page-walk latencies on TLB
// misses plus flushes at address-space switches.
func BenchmarkExtensionTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runOnce(b, "find-od", func(m *machine.Config) {})
		tlb := runOnce(b, "find-od", func(m *machine.Config) {
			m.Mem = m.Mem.WithTLB()
		})
		b.ReportMetric(float64(tlb.Cycles)/float64(base.Cycles), "tlb-slowdown")
	}
}

// BenchmarkExtensionPrefetch measures the L2 next-line prefetcher on the
// streaming-heavy swim kernel.
func BenchmarkExtensionPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runOnce(b, "swim", func(m *machine.Config) {})
		pf := runOnce(b, "swim", func(m *machine.Config) {
			m.Mem = m.Mem.WithPrefetch()
		})
		b.ReportMetric(float64(base.Cycles)/float64(pf.Cycles), "prefetch-speedup")
	}
}

// BenchmarkServerRunRequest measures the serving front-end's per-request
// overhead on the memo-cache hit path (admission, breaker, singleflight
// lookup, JSON response) — the simulation itself runs once, outside the
// timed loop. This is the latency floor a warm fssimd adds over the raw
// scheduler.
func BenchmarkServerRunRequest(b *testing.B) {
	srv := server.New(server.Config{Scale: benchScale})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := server.NewClient(hs.URL)
	req := server.RunRequest{Benchmark: "gzip", Mode: "app", Seed: 1}
	ctx := context.Background()
	if _, err := c.Run(ctx, req); err != nil { // warm the memo cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cache != "hit" {
			b.Fatalf("cache status %q, want hit", res.Cache)
		}
	}
}

func runOnce(b *testing.B, bench string, tweak func(*machine.Config)) machine.Stats {
	b.Helper()
	opts := workload.DefaultOptions()
	opts.Scale = benchScale
	tweak(&opts.Machine)
	res, err := workload.Run(bench, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Stats
}

// benchSnapshot learns a PLT on one cold accelerated ab-seq run and wraps
// the exported state as a store snapshot — the input to the persistence
// benches below.
func benchSnapshot(b *testing.B) *pltstore.Snapshot {
	b.Helper()
	opts := workload.DefaultOptions()
	opts.Scale = benchScale
	opts.Machine.Mode = machine.Accelerated
	acc := core.NewAccelerator(core.DefaultParams())
	opts.Sink = acc
	res, err := workload.Run("ab-seq", opts)
	if err != nil {
		b.Fatal(err)
	}
	learn := pltstore.LearnHash("ab-seq", opts.Machine, core.DefaultParams(), benchScale, "")
	return &pltstore.Snapshot{
		LearnHash:  learn,
		ReplayHash: pltstore.ReplayHash(learn, "bench:ab-seq", opts.Machine.Seed),
		Benchmark:  "ab-seq",
		Key:        "bench:ab-seq",
		Stats:      res.Stats,
		State:      acc.Export(),
	}
}

// BenchmarkSnapshotSave measures persisting one learned PLT snapshot:
// validate, encode (with checksum), atomic temp-file + rename write.
func BenchmarkSnapshotSave(b *testing.B) {
	snap := benchSnapshot(b)
	st := pltstore.Open(b.TempDir())
	b.SetBytes(int64(len(pltstore.Encode(snap))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Save(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures the warm-start read path: file read,
// checksum verify, strict decode, semantic validation.
func BenchmarkSnapshotLoad(b *testing.B) {
	snap := benchSnapshot(b)
	st := pltstore.Open(b.TempDir())
	if err := st.Save(snap); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pltstore.Encode(snap))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Load("ab-seq", snap.LearnHash); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmVsColdSimulation compares an accelerated run that imports a
// persisted PLT before simulating against the cold run that learns from
// scratch: the detailed-interval counts quantify the work a warm start
// skips, the per-op time is the warm run itself.
func BenchmarkWarmVsColdSimulation(b *testing.B) {
	snap := benchSnapshot(b)
	coldDetailed := snap.Stats.Intervals - snap.Stats.Emulated
	for i := 0; i < b.N; i++ {
		acc := core.NewAccelerator(core.DefaultParams())
		if err := acc.Import(snap.State); err != nil {
			b.Fatal(err)
		}
		opts := workload.DefaultOptions()
		opts.Scale = benchScale
		opts.Machine.Mode = machine.Accelerated
		opts.Sink = acc
		res, err := workload.Run("ab-seq", opts)
		if err != nil {
			b.Fatal(err)
		}
		warmDetailed := res.Stats.Intervals - res.Stats.Emulated
		b.ReportMetric(float64(coldDetailed), "cold-detailed")
		b.ReportMetric(float64(warmDetailed), "warm-detailed")
		b.ReportMetric(100*res.Stats.Coverage(), "warm-cov-%")
	}
}

// BenchmarkTransferVsColdSweep runs the L2 design-space sweep experiment —
// every eligible point warm-started from the in-sweep donor and paired with
// a cold twin, the out-of-range point rejected — and reports how much
// detailed simulation the cross-config transfers skipped.
func BenchmarkTransferVsColdSweep(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = benchScale
	for i := 0; i < b.N; i++ {
		s := experiments.NewScheduler(cfg)
		res, err := s.Run("sweep")
		if err != nil {
			b.Fatal(err)
		}
		var cold, xfer float64
		for _, line := range strings.Split(res.StableRender(), "\n") {
			f := strings.Fields(line)
			if len(f) != 9 || f[8] != "transferred" {
				continue
			}
			cold += cell(f[4])
			xfer += cell(f[5])
		}
		if xfer == 0 {
			b.Fatal("sweep table has no transferred rows")
		}
		st := s.Stats()
		b.ReportMetric(cold, "cold-detailed")
		b.ReportMetric(xfer, "transfer-detailed")
		b.ReportMetric(cold/xfer, "detail-cut-x")
		b.ReportMetric(float64(st.TransferHits), "imports")
		b.ReportMetric(float64(st.TransferRejected), "rejected")
	}
}
