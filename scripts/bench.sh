#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write a machine-readable baseline,
# or gate a change against the checked-in baseline.
#
# The repo keeps one BENCH_<pr>.json per PR so the benchmark trajectory is
# diffable across the stack: each entry records ns/op, B/op and allocs/op for
# every benchmark in bench_test.go (one per paper artifact, plus ablations
# and substrate micro-benchmarks).
#
# Usage:
#   scripts/bench.sh                  # full suite, 1 iteration each
#   scripts/bench.sh -gate            # perf-regression gate (see below)
#   BENCHTIME=3x scripts/bench.sh     # more iterations (slower, steadier)
#   BENCH_PATTERN=Fig scripts/bench.sh  # subset by regex
#   BENCH_OUT=BENCH_dev.json scripts/bench.sh
#
# Gate mode reruns the key whole-system benchmarks (Fig1, the full-system,
# accelerated and sampled end-to-end runs, and the transfer sweep) and compares their memory profile
# against the checked-in baseline (BENCH_BASELINE, default BENCH_8.json). The build
# fails when allocs/op or bytes/op regress by more than 10% (plus a small
# absolute slack so near-zero budgets don't flap). ns/op is reported but not
# gated — wall-clock on shared CI runners is too noisy to block on, while
# the allocation profile is a deterministic function of the code.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BENCH_BASELINE:-BENCH_8.json}"
BENCHTIME="${BENCHTIME:-1x}"

run_suite() { # $1 = pattern, $2 = output json
    local raw
    raw="$(go test -run '^$' -bench "$1" -benchtime "$BENCHTIME" -benchmem -timeout 60m .)"
    printf '%s\n' "$raw"
    printf '%s\n' "$raw" | awk -v out="$2" -v benchtime="$BENCHTIME" \
        -v goversion="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    entry = sprintf("    {\"name\": %s, \"iters\": %s, \"ns_per_op\": %s", \
                    q(name), $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      entry = entry sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $i)
    }
    entries[n++] = entry "}"
}
function q(s) { gsub(/"/, "\\\"", s); return "\"" s "\"" }
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"go\": %s,\n  \"benchtime\": %s,\n  \"benchmarks\": [\n", \
           q(goversion), q(benchtime) > out
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n-1 ? "," : "") > out
    printf "  ]\n}\n" > out
    printf "bench.sh: wrote %s (%d benchmarks)\n", out, n > "/dev/stderr"
}'
}

if [ "${1:-}" = "-gate" ]; then
    GATE_PATTERN='^(BenchmarkFig1|BenchmarkFullSystemSimulation|BenchmarkAcceleratedSimulation|BenchmarkSampledVsFullRun|BenchmarkTransferVsColdSweep)$'
    [ -f "$BASELINE" ] || { echo "bench.sh: baseline $BASELINE missing" >&2; exit 1; }
    CUR="$(mktemp "${TMPDIR:-/tmp}/bench-gate.XXXXXX.json")"
    trap 'rm -f "$CUR"' EXIT
    run_suite "$GATE_PATTERN" "$CUR"
    # The baseline writer emits one benchmark entry per line, so the gate can
    # parse its own format without a JSON tool on the runner.
    awk '
function val(line, key,   m) {
    if (match(line, "\"" key "\": [0-9.e+]+") == 0) return -1
    m = substr(line, RSTART, RLENGTH); sub(/.*: /, "", m); return m + 0
}
function name(line,   m) {
    if (match(line, /"name": "[^"]+"/) == 0) return ""
    m = substr(line, RSTART, RLENGTH); gsub(/"name": "|"$/, "", m); return m
}
FNR == NR {
    if ((n = name($0)) != "") {
        b_allocs[n] = val($0, "allocs_per_op")
        b_bytes[n]  = val($0, "bytes_per_op")
        b_ns[n]     = val($0, "ns_per_op")
    }
    next
}
{
    n = name($0); if (n == "" || !(n in b_allocs)) next
    checked++
    allocs = val($0, "allocs_per_op"); bytes = val($0, "bytes_per_op")
    ns = val($0, "ns_per_op")
    printf "gate %-28s ns/op %12.0f (base %12.0f)  B/op %10.0f (base %10.0f)  allocs/op %8.0f (base %8.0f)\n", \
           n, ns, b_ns[n], bytes, b_bytes[n], allocs, b_allocs[n]
    if (allocs > b_allocs[n] * 1.10 + 16) {
        printf "FAIL %s: allocs/op %.0f exceeds baseline %.0f by more than 10%%\n", n, allocs, b_allocs[n]
        bad = 1
    }
    if (bytes > b_bytes[n] * 1.10 + 4096) {
        printf "FAIL %s: bytes/op %.0f exceeds baseline %.0f by more than 10%%\n", n, bytes, b_bytes[n]
        bad = 1
    }
}
END {
    if (checked < 5) { printf "FAIL gate compared only %d benchmarks, want 5\n", checked; bad = 1 }
    if (bad) exit 1
    printf "gate: %d benchmarks within budget\n", checked
}' "$BASELINE" "$CUR"
    exit 0
fi

OUT="${BENCH_OUT:-$BASELINE}"
PATTERN="${BENCH_PATTERN:-.}"
run_suite "$PATTERN" "$OUT"
