#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write a machine-readable baseline.
#
# The repo keeps one BENCH_<pr>.json per PR so the benchmark trajectory is
# diffable across the stack: each entry records ns/op, B/op and allocs/op for
# every benchmark in bench_test.go (one per paper artifact, plus ablations
# and substrate micro-benchmarks).
#
# Usage:
#   scripts/bench.sh                  # full suite, 1 iteration each
#   BENCHTIME=3x scripts/bench.sh     # more iterations (slower, steadier)
#   BENCH_PATTERN=Fig scripts/bench.sh  # subset by regex
#   BENCH_OUT=BENCH_dev.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_5.json}"
BENCHTIME="${BENCHTIME:-1x}"
PATTERN="${BENCH_PATTERN:-.}"

RAW="$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem -timeout 60m .)"
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v out="$OUT" -v benchtime="$BENCHTIME" \
    -v goversion="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    entry = sprintf("    {\"name\": %s, \"iters\": %s, \"ns_per_op\": %s", \
                    q(name), $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      entry = entry sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $i)
    }
    entries[n++] = entry "}"
}
function q(s) { gsub(/"/, "\\\"", s); return "\"" s "\"" }
END {
    if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"go\": %s,\n  \"benchtime\": %s,\n  \"benchmarks\": [\n", \
           q(goversion), q(benchtime) > out
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n-1 ? "," : "") > out
    printf "  ]\n}\n" > out
    printf "bench.sh: wrote %s (%d benchmarks)\n", out, n > "/dev/stderr"
}'
