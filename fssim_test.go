package fssim_test

import (
	"testing"

	"fssim"
)

func TestPublicRunBenchmark(t *testing.T) {
	rep, err := fssim.RunBenchmark("du", fssim.Options{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles() == 0 || rep.IPC() <= 0 {
		t.Fatalf("empty report: %+v", rep.Stats)
	}
	if rep.Coverage() != 0 {
		t.Error("non-accelerated run reported coverage")
	}
}

func TestPublicAccelerated(t *testing.T) {
	rep, err := fssim.RunBenchmark("iperf", fssim.Options{
		Mode: fssim.Accelerated, Strategy: fssim.Statistical, Scale: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() < 0.3 {
		t.Errorf("coverage = %.2f", rep.Coverage())
	}
	if rep.Accel == nil || rep.Accel.Summary().Clusters == 0 {
		t.Error("accelerator learned nothing")
	}
}

func TestPublicCustomWorkload(t *testing.T) {
	sys := fssim.NewSystem(fssim.Options{})
	sys.FS().MustCreate("/data/input", 256<<10)
	var processed int
	sys.Spawn("myapp", func(p *fssim.Proc) {
		fd := p.Open("/data/input")
		for {
			n := p.Read(fd, p.Scratch(), 64<<10)
			if n == 0 {
				break
			}
			processed += n
			p.U.Mix(2000)
		}
		p.Close(fd)
	})
	rep := sys.Run()
	if processed != 256<<10 {
		t.Fatalf("processed %d bytes", processed)
	}
	if rep.Stats.OSInsts == 0 || rep.Stats.UserInsts == 0 {
		t.Fatalf("attribution missing: %+v", rep.Stats)
	}
}

func TestPublicObserver(t *testing.T) {
	seen := 0
	rep, err := fssim.RunBenchmark("du", fssim.Options{
		Scale:    0.25,
		Observer: func(r fssim.IntervalRecord) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 || uint64(seen) != rep.Stats.Intervals {
		t.Fatalf("observer saw %d of %d intervals", seen, rep.Stats.Intervals)
	}
}

func TestPublicLists(t *testing.T) {
	if len(fssim.Benchmarks()) != 10 || len(fssim.OSIntensiveBenchmarks()) != 5 {
		t.Fatal("benchmark lists wrong")
	}
	if len(fssim.Experiments()) != 18 {
		t.Fatal("experiment list wrong")
	}
}

func TestPublicRunExperiment(t *testing.T) {
	out, err := fssim.RunExperiment("fig7", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty experiment output")
	}
}

func TestPublicWarmStart(t *testing.T) {
	dir := t.TempDir()
	opts := fssim.Options{Mode: fssim.Accelerated, Scale: 0.2, WarmDir: dir}

	cold, err := fssim.RunBenchmark("ab-seq", opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted {
		t.Error("first run reported a warm start with an empty store")
	}

	warm, err := fssim.RunBenchmark("ab-seq", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("second run did not warm-start from the persisted snapshot")
	}
	if warm.Coverage() <= cold.Coverage() {
		t.Errorf("warm coverage %.3f not above cold %.3f (learning window not skipped)",
			warm.Coverage(), cold.Coverage())
	}
	coldSum, warmSum := cold.Accel.Summary(), warm.Accel.Summary()
	if warmSum.Learned-coldSum.Learned >= coldSum.Learned {
		t.Errorf("warm run learned %d new instances vs %d cold (warm start saved nothing)",
			warmSum.Learned-coldSum.Learned, coldSum.Learned)
	}

	// A different configuration hashes elsewhere: cold again, no error.
	other := opts
	other.Scale = 0.3
	rerun, err := fssim.RunBenchmark("ab-seq", other)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.WarmStarted {
		t.Error("scale change still warm-started: hash gate missed a config field")
	}
}
